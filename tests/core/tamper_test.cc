// Malicious-SSP tests: the threat model of §VII. The SSP stores and
// serves blobs but is not trusted; any modification, substitution or
// forged write must be detected by the client's verification chain.

#include <gtest/gtest.h>

#include "testing/world.h"

namespace sharoes {
namespace {

using core::CreateOptions;
using testing::kAlice;
using testing::kBob;
using testing::kEng;
using testing::World;

class TamperTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<World>();
    core::LocalNode root =
        core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
    root.children.push_back(core::LocalNode::File(
        "doc.txt", kAlice, kEng, World::ParseMode("rw-r--r--"),
        ToBytes("authentic content")));
    ASSERT_TRUE(world_->MigrateAndMountAll(root).ok());
    // Locate the file's inode via a stat.
    auto attrs = world_->client(kAlice).Getattr("/doc.txt");
    ASSERT_TRUE(attrs.ok());
    inode_ = attrs->inode;
  }
  std::unique_ptr<World> world_;
  fs::InodeNum inode_ = 0;
};

TEST_F(TamperTest, CorruptedDataBlockDetected) {
  ASSERT_TRUE(world_->server().store().CorruptData(inode_, 0, 40));
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/doc.txt");
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsCorruption()) << read.status();
}

TEST_F(TamperTest, CorruptedMetadataDetected) {
  // Corrupt every replica of the file (selectors 0..2).
  bool corrupted = false;
  for (uint64_t sel = 0; sel < 3; ++sel) {
    corrupted |= world_->server().store().CorruptMetadata(inode_, sel, 13);
  }
  ASSERT_TRUE(corrupted);
  world_->client(kBob).DropCaches();
  auto r = world_->client(kBob).Getattr("/doc.txt");
  EXPECT_FALSE(r.ok());
}

TEST_F(TamperTest, SubstitutedDataBlockDetected) {
  // Substitution with *another* valid-looking blob (here: random bytes
  // shaped like an envelope) must fail verification.
  Rng rng(5);
  ASSERT_TRUE(
      world_->server().store().ReplaceData(inode_, 0, rng.NextBytes(128)));
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/doc.txt");
  EXPECT_FALSE(read.ok());
}

TEST_F(TamperTest, CrossFileBlockSwapDetected) {
  // The SSP serves file B's (validly signed) block for file A: the
  // signature binds the inode, so this must fail.
  CreateOptions opts;
  opts.mode = World::ParseMode("rw-r--r--");
  ASSERT_TRUE(world_->client(kAlice).Create("/other.txt", opts).ok());
  ASSERT_TRUE(world_->client(kAlice)
                  .WriteFile("/other.txt", ToBytes("other file content"))
                  .ok());
  auto other_attrs = world_->client(kAlice).Getattr("/other.txt");
  ASSERT_TRUE(other_attrs.ok());
  auto other_block = world_->server().store().GetData(other_attrs->inode, 0);
  ASSERT_TRUE(other_block.has_value());
  ASSERT_TRUE(
      world_->server().store().ReplaceData(inode_, 0, *other_block));
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/doc.txt");
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsCorruption()) << read.status();
}

TEST_F(TamperTest, ForgedWriteByReaderDetected) {
  // The paper's motivating attack for DSK/DVK: a reader holds the DEK
  // (symmetric), so they can *produce* a well-formed ciphertext — but
  // they cannot sign it. Model a malicious reader (bob) writing directly
  // to the SSP, bypassing his client's permission checks.
  world_->client(kBob).DropCaches();
  ASSERT_TRUE(world_->client(kBob).Read("/doc.txt").ok());  // Has DEK.
  // Bob forges a blob and stores it at the SSP (the SSP does not verify).
  Rng rng(6);
  world_->server().store().PutData(inode_, 0, rng.NextBytes(200));
  // Alice's next read detects the forgery instead of accepting it.
  world_->client(kAlice).DropCaches();
  auto read = world_->client(kAlice).Read("/doc.txt");
  EXPECT_FALSE(read.ok());
}

TEST_F(TamperTest, CorruptedSuperblockDetected) {
  auto sb = world_->server().store().GetSuperblock(kBob);
  ASSERT_TRUE(sb.has_value());
  Bytes bad = *sb;
  bad[bad.size() / 2] ^= 0xFF;
  world_->server().store().PutSuperblock(kBob, bad);
  // A fresh mount fails cleanly (RSA decryption/parse fails) rather than
  // accepting a corrupted root reference.
  EXPECT_FALSE(world_->Mount(kBob).ok());
}

TEST_F(TamperTest, CorruptedTableCopyDetected) {
  // Corrupt the root directory's table copies; traversal must fail, not
  // return attacker-controlled rows.
  for (uint64_t sel = 0; sel < 3; ++sel) {
    world_->server().store().CorruptMetadata(
        fs::kRootInode, core::TableSelector(sel), 21);
  }
  world_->client(kBob).DropCaches();
  auto r = world_->client(kBob).Getattr("/doc.txt");
  EXPECT_FALSE(r.ok());
}

TEST_F(TamperTest, TruncatedBlobFailsCleanly) {
  auto blob = world_->server().store().GetData(inode_, 0);
  ASSERT_TRUE(blob.has_value());
  Bytes tiny(blob->begin(), blob->begin() + 3);
  world_->server().store().PutData(inode_, 0, tiny);
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/doc.txt");
  EXPECT_FALSE(read.ok());  // Corruption or integrity error; never UB.
}

}  // namespace
}  // namespace sharoes
