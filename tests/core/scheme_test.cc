// Scheme-1 vs Scheme-2 (paper §III-D): behavioural equivalence and the
// structural differences (replica counts, storage).

#include <gtest/gtest.h>

#include "testing/world.h"

namespace sharoes {
namespace {

using core::Scheme;
using testing::kAlice;
using testing::kBob;
using testing::kCarol;
using testing::kEng;
using testing::World;

World::Options SchemeOptions(Scheme scheme) {
  World::Options o;
  o.scheme = scheme;
  return o;
}

// The same behavioural expectations must hold under both schemes.
class SchemeSweep : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeSweep, SharingSemanticsIdentical) {
  World world(SchemeOptions(GetParam()));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());

  // Owner read own file.
  auto r = world.client(kAlice).Read("/home/alice/notes.txt");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToString(*r), "alice's notes");
  // Group member read.
  r = world.client(kBob).Read("/home/alice/notes.txt");
  ASSERT_TRUE(r.ok()) << r.status();
  // Non-member denied.
  EXPECT_FALSE(world.client(kCarol).Read("/home/alice/notes.txt").ok());
  // Others read world-readable through an exec-only directory.
  r = world.client(kCarol).Read("/home/alice/public.txt");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToString(*r), "hello world");
  // Private directory blocks others.
  EXPECT_FALSE(world.client(kAlice).Read("/home/bob/secret.txt").ok());
  // Create + cross-user read.
  core::CreateOptions opts;
  opts.mode = World::ParseMode("rw-r--r--");
  ASSERT_TRUE(world.client(kAlice).Create("/shared/new.txt", opts).ok());
  ASSERT_TRUE(
      world.client(kAlice).WriteFile("/shared/new.txt", ToBytes("hi")).ok());
  r = world.client(kBob).Read("/shared/new.txt");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(ToString(*r), "hi");
}

TEST_P(SchemeSweep, ChmodRevocationWorks) {
  World world(SchemeOptions(GetParam()));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  ASSERT_TRUE(world.client(kCarol).Read("/home/alice/public.txt").ok());
  ASSERT_TRUE(world.client(kAlice)
                  .Chmod("/home/alice/public.txt",
                         World::ParseMode("rw-r-----"))
                  .ok());
  world.client(kCarol).DropCaches();
  EXPECT_FALSE(world.client(kCarol).Read("/home/alice/public.txt").ok());
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, SchemeSweep,
                         ::testing::Values(Scheme::kScheme1,
                                           Scheme::kScheme2));

// Adds three extra enterprise users (one in eng) so class universes have
// several members — replication and split behaviour only differ from
// per-user replication when users outnumber classes.
void AddExtraUsers(World& world) {
  world.AddUser(200, "dave");
  world.AddUser(201, "erin");
  world.AddUser(202, "frank");
  ASSERT_TRUE(world.provisioner().AddGroupMember(kEng, 200).ok());
}

TEST(SchemeStructureTest, Scheme1ReplicatesPerUser) {
  World w1(SchemeOptions(Scheme::kScheme1));
  AddExtraUsers(w1);
  ASSERT_TRUE(w1.MigrateAndMountAll(World::DefaultTree()).ok());
  World w2(SchemeOptions(Scheme::kScheme2));
  AddExtraUsers(w2);
  ASSERT_TRUE(w2.MigrateAndMountAll(World::DefaultTree()).ok());

  // Scheme-1: one replica per registered user (6).
  auto attrs1 = w1.client(kAlice).Getattr("/home/alice/public.txt");
  ASSERT_TRUE(attrs1.ok());
  EXPECT_EQ(w1.server().store().MetadataReplicaCount(attrs1->inode), 6u);

  // Scheme-2: one replica per non-empty class.
  auto attrs2 = w2.client(kAlice).Getattr("/home/alice/public.txt");
  ASSERT_TRUE(attrs2.ok());
  size_t replicas2 = w2.server().store().MetadataReplicaCount(attrs2->inode);
  EXPECT_LE(replicas2, 3u);
  EXPECT_GE(replicas2, 1u);

  // Total metadata storage: Scheme-1 strictly larger.
  EXPECT_GT(w1.server().store().Stats().metadata_bytes,
            w2.server().store().Stats().metadata_bytes);
}

TEST(SchemeStructureTest, Scheme1HasNoSplitBlocks) {
  // Per-user trees never diverge within a copy (each copy has exactly one
  // reader), so Scheme-1 stores no split blocks even for cross-owned
  // trees; Scheme-2 stores some for the same tree.
  World w1(SchemeOptions(Scheme::kScheme1));
  AddExtraUsers(w1);
  ASSERT_TRUE(w1.MigrateAndMountAll(World::DefaultTree()).ok());
  EXPECT_EQ(w1.migration_stats().split_blocks, 0u);

  World w2(SchemeOptions(Scheme::kScheme2));
  AddExtraUsers(w2);
  ASSERT_TRUE(w2.MigrateAndMountAll(World::DefaultTree()).ok());
  // /home contains alice's and bob's homes (different owners): the eng
  // group copy of /home is read by bob and dave, who diverge on
  // /home/bob (owner vs. group member) — a split point.
  EXPECT_GT(w2.migration_stats().split_blocks, 0u);
  // And the split still resolves correctly for everyone involved.
  ASSERT_TRUE(w2.Mount(200).ok());
  EXPECT_TRUE(w2.client(200).Getattr("/home/bob").ok());
  EXPECT_FALSE(w2.client(200).Read("/home/bob/secret.txt").ok());
  EXPECT_TRUE(w2.client(kBob).Read("/home/bob/secret.txt").ok());
}

}  // namespace
}  // namespace sharoes
