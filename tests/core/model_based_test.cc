// Model-based randomized testing: long random operation sequences are
// executed both against SHAROES (full crypto + simulated SSP) and an
// in-memory reference filesystem with POSIX-monitor semantics. Every
// outcome — success, denial, error — must agree, and file contents must
// match byte for byte.

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "fs/path.h"
#include "testing/world.h"

namespace sharoes {
namespace {

using core::CreateOptions;
using testing::kAlice;
using testing::kBob;
using testing::kCarol;
using testing::kEng;
using testing::World;

// --- The reference model ----------------------------------------------------

struct RefNode {
  bool is_dir = false;
  Bytes content;
  fs::UserId owner = kAlice;
  fs::GroupId group = kEng;
  fs::Mode mode;
  std::map<std::string, RefNode> children;
};

struct Model {
  RefNode root;

  RefNode* Find(const std::vector<std::string>& comps) {
    RefNode* cur = &root;
    for (const std::string& c : comps) {
      auto it = cur->children.find(c);
      if (it == cur->children.end()) return nullptr;
      cur = &it->second;
    }
    return cur;
  }
};

fs::InodeAttrs AttrsOf(const RefNode& n) {
  fs::InodeAttrs a;
  a.owner = n.owner;
  a.group = n.group;
  a.mode = n.mode;
  a.type = n.is_dir ? fs::FileType::kDirectory : fs::FileType::kFile;
  return a;
}

// Does `who` have exec on every directory along `comps` (excluding the
// final component itself)?
bool CanTraverse(Model& model, const std::vector<std::string>& comps,
                 const fs::Principal& who) {
  RefNode* cur = &model.root;
  for (const std::string& c : comps) {
    if (!cur->is_dir) return false;
    if (!fs::Allows(AttrsOf(*cur), who, fs::Access::kExec)) return false;
    auto it = cur->children.find(c);
    if (it == cur->children.end()) return false;
    cur = &it->second;
  }
  return true;
}

std::string JoinComps(const std::vector<std::string>& comps) {
  return fs::JoinPath(comps);
}

// --- The random walk ---------------------------------------------------------

struct ModelCase {
  uint64_t seed;
  int ops;
};

class ModelBasedTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelBasedTest, RandomOpsAgreeWithReferenceModel) {
  const ModelCase& c = GetParam();
  Rng rng(c.seed);

  World::Options wopts;
  wopts.signing_key_pool = 8;
  World world(wopts);
  core::LocalNode root =
      core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxrwxr-x"));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());

  Model model;
  model.root.is_dir = true;
  model.root.owner = kAlice;
  model.root.group = kEng;
  model.root.mode = World::ParseMode("rwxrwxr-x");

  const fs::UserId users[] = {kAlice, kBob, kCarol};
  const char* names[] = {"a", "b", "c", "d"};
  // Supported class triples only (no -w-, -wx for dirs handled by
  // ModeSupported checks; file triples avoid w/x without r).
  const uint16_t file_modes[] = {0600, 0640, 0644, 0664, 0666, 0400, 0000};
  const uint16_t dir_modes[] = {0700, 0750, 0755, 0711, 0770, 0500, 0751};

  // Collects every path in the model (as component vectors).
  auto all_paths = [&] {
    std::vector<std::vector<std::string>> out;
    out.push_back({});
    std::function<void(RefNode&, std::vector<std::string>)> walk =
        [&](RefNode& node, std::vector<std::string> prefix) {
          for (auto& [name, child] : node.children) {
            auto comps = prefix;
            comps.push_back(name);
            out.push_back(comps);
            if (child.is_dir) walk(child, comps);
          }
        };
    walk(model.root, {});
    return out;
  };

  int agreements = 0;
  for (int op = 0; op < c.ops; ++op) {
    fs::UserId uid = users[rng.NextBelow(3)];
    fs::Principal who = world.identity().PrincipalOf(uid);
    core::SharoesClient& client = world.client(uid);
    // Clients have no cross-client cache coherence (as in the paper's
    // prototype); revalidate before every operation so the interleaved
    // multi-user walk matches the strongly consistent reference model.
    client.DropCaches();
    auto paths = all_paths();
    auto& target_comps = paths[rng.NextBelow(paths.size())];
    std::string target = JoinComps(target_comps);
    RefNode* target_node = model.Find(target_comps);
    ASSERT_NE(target_node, nullptr);

    switch (rng.NextBelow(8)) {
      case 0: {  // getattr
        bool want = CanTraverse(model, target_comps, who);
        auto got = client.Getattr(target);
        EXPECT_EQ(got.ok(), want) << "getattr " << target << " uid " << uid
                                  << ": " << got.status();
        if (got.ok()) {
          EXPECT_EQ(got->owner, target_node->owner);
          EXPECT_EQ(got->mode, target_node->mode);
        }
        break;
      }
      case 1: {  // read
        bool want = CanTraverse(model, target_comps, who) &&
                    !target_node->is_dir &&
                    fs::Allows(AttrsOf(*target_node), who, fs::Access::kRead);
        auto got = client.Read(target);
        EXPECT_EQ(got.ok(), want)
            << "read " << target << " uid " << uid << ": " << got.status();
        if (got.ok()) {
          EXPECT_EQ(*got, target_node->content) << "content of " << target;
        }
        break;
      }
      case 2: {  // readdir
        bool want = CanTraverse(model, target_comps, who) &&
                    target_node->is_dir &&
                    fs::Allows(AttrsOf(*target_node), who, fs::Access::kRead);
        auto got = client.Readdir(target);
        EXPECT_EQ(got.ok(), want) << "readdir " << target << " uid " << uid
                                  << ": " << got.status();
        if (got.ok()) {
          EXPECT_EQ(got->size(), target_node->children.size());
        }
        break;
      }
      case 3: {  // write (whole-file)
        bool want = CanTraverse(model, target_comps, who) &&
                    !target_node->is_dir &&
                    fs::Allows(AttrsOf(*target_node), who,
                               fs::Access::kWrite);
        Bytes content = rng.NextBytes(rng.NextBelow(6000));
        Status got = client.WriteFile(target, content);
        EXPECT_EQ(got.ok(), want)
            << "write " << target << " uid " << uid << ": " << got;
        if (got.ok()) target_node->content = content;
        break;
      }
      case 4: {  // create or mkdir
        if (!target_node->is_dir) break;
        std::string name = names[rng.NextBelow(4)];
        bool as_dir = rng.NextBool();
        uint16_t mode_octal = as_dir ? dir_modes[rng.NextBelow(7)]
                                     : file_modes[rng.NextBelow(7)];
        auto child_comps = target_comps;
        child_comps.push_back(name);
        bool exists = target_node->children.count(name) > 0;
        bool want = CanTraverse(model, target_comps, who) &&
                    fs::Allows(AttrsOf(*target_node), who,
                               fs::Access::kWrite) &&
                    fs::Allows(AttrsOf(*target_node), who,
                               fs::Access::kExec) &&
                    !exists;
        CreateOptions copts;
        copts.mode = fs::Mode::FromOctal(mode_octal);
        std::string child_path = JoinComps(child_comps);
        Status got = as_dir ? client.Mkdir(child_path, copts)
                            : client.Create(child_path, copts);
        EXPECT_EQ(got.ok(), want) << (as_dir ? "mkdir " : "create ")
                                  << child_path << " uid " << uid << ": "
                                  << got;
        if (got.ok()) {
          RefNode child;
          child.is_dir = as_dir;
          child.owner = uid;
          child.group = world.DefaultGroupOf(uid);
          child.mode = fs::Mode::FromOctal(mode_octal);
          target_node->children[name] = child;
        }
        break;
      }
      case 5: {  // chmod (mode-bit changes only)
        if (target_comps.empty()) break;  // Skip the root for simplicity.
        uint16_t mode_octal = target_node->is_dir
                                  ? dir_modes[rng.NextBelow(7)]
                                  : file_modes[rng.NextBelow(7)];
        bool want = CanTraverse(model, target_comps, who) &&
                    uid == target_node->owner;
        Status got = client.Chmod(target, fs::Mode::FromOctal(mode_octal));
        EXPECT_EQ(got.ok(), want)
            << "chmod " << target << " uid " << uid << ": " << got;
        if (got.ok()) target_node->mode = fs::Mode::FromOctal(mode_octal);
        break;
      }
      case 6: {  // unlink
        if (target_comps.empty() || target_node->is_dir) break;
        auto parent_comps = target_comps;
        parent_comps.pop_back();
        RefNode* parent = model.Find(parent_comps);
        bool want = CanTraverse(model, target_comps, who) &&
                    fs::Allows(AttrsOf(*parent), who, fs::Access::kWrite) &&
                    fs::Allows(AttrsOf(*parent), who, fs::Access::kExec);
        Status got = client.Unlink(target);
        EXPECT_EQ(got.ok(), want)
            << "unlink " << target << " uid " << uid << ": " << got;
        if (got.ok()) parent->children.erase(target_comps.back());
        break;
      }
      case 7: {  // rmdir
        if (target_comps.empty() || !target_node->is_dir) break;
        auto parent_comps = target_comps;
        parent_comps.pop_back();
        RefNode* parent = model.Find(parent_comps);
        // Our documented rmdir semantics: parent w&x, target empty, and
        // the caller can prove emptiness through their own CAP (owner, or
        // a class whose effective dir perms expose the table).
        fs::ResolvedPerms perms = fs::Resolve(AttrsOf(*target_node), who);
        fs::PermTriple eff = core::EffectiveDirPerms(perms.perms);
        bool can_verify = uid == target_node->owner || eff != 0;
        bool want = CanTraverse(model, target_comps, who) &&
                    fs::Allows(AttrsOf(*parent), who, fs::Access::kWrite) &&
                    fs::Allows(AttrsOf(*parent), who, fs::Access::kExec) &&
                    target_node->children.empty() && can_verify;
        Status got = client.Rmdir(target);
        EXPECT_EQ(got.ok(), want)
            << "rmdir " << target << " uid " << uid << ": " << got;
        if (got.ok()) parent->children.erase(target_comps.back());
        break;
      }
    }
    ++agreements;
    if (::testing::Test::HasFailure()) break;  // Stop at first divergence.
  }
  EXPECT_EQ(agreements, c.ops);
}

INSTANTIATE_TEST_SUITE_P(Walks, ModelBasedTest,
                         ::testing::Values(ModelCase{101, 500},
                                           ModelCase{202, 500},
                                           ModelCase{303, 500},
                                           ModelCase{404, 500},
                                           ModelCase{505, 500}));

}  // namespace
}  // namespace sharoes
