// Block-level update tests (paper §II-B): "larger files are divided into
// multiple blocks and each block is encrypted separately. This helps
// accommodate updates efficiently by avoiding re-encrypting entire files
// after a write."

#include <gtest/gtest.h>

#include "testing/world.h"

namespace sharoes {
namespace {

using testing::kAlice;
using testing::kBob;
using testing::kEng;
using testing::World;

class PartialUpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<World>();
    core::LocalNode root =
        core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
    // A 5-block file (4 KiB blocks).
    base_ = Bytes(18000, 'a');
    root.children.push_back(core::LocalNode::File(
        "big.bin", kAlice, kEng, World::ParseMode("rw-rw-r--"), base_));
    ASSERT_TRUE(world_->MigrateAndMountAll(root).ok());
    auto attrs = world_->client(kAlice).Getattr("/big.bin");
    ASSERT_TRUE(attrs.ok());
    inode_ = attrs->inode;
  }

  /// Raw stored blocks at the SSP (to see which were rewritten).
  std::map<uint32_t, Bytes> StoredBlocks() {
    std::map<uint32_t, Bytes> out;
    for (uint32_t i = 0; i < 16; ++i) {
      auto blob = world_->server().store().GetData(inode_, i);
      if (blob.has_value()) out[i] = *blob;
    }
    return out;
  }

  std::unique_ptr<World> world_;
  Bytes base_;
  fs::InodeNum inode_ = 0;
};

TEST_F(PartialUpdateTest, SingleBlockEditRewritesOnlyThatBlockAndDesc) {
  auto& alice = world_->client(kAlice);
  ASSERT_TRUE(alice.Read("/big.bin").ok());  // Warm the block cache.
  std::map<uint32_t, Bytes> before = StoredBlocks();
  ASSERT_EQ(before.size(), 5u);

  // Flip bytes inside block 2 only (offsets within [chunk0+bs, chunk0+2bs)).
  Bytes edited = base_;
  for (size_t i = 9000; i < 9100; ++i) edited[i] = 'Z';
  ASSERT_TRUE(alice.WriteFile("/big.bin", edited).ok());

  std::map<uint32_t, Bytes> after = StoredBlocks();
  ASSERT_EQ(after.size(), 5u);
  EXPECT_NE(after[0], before[0]);  // Descriptor block always rewritten.
  EXPECT_EQ(after[1], before[1]);  // Untouched blocks keep old ciphertext.
  EXPECT_NE(after[2], before[2]);  // The edited block was re-encrypted.
  EXPECT_EQ(after[3], before[3]);
  EXPECT_EQ(after[4], before[4]);

  // And the mixed-generation file reads back correctly everywhere.
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/big.bin");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, edited);
}

TEST_F(PartialUpdateTest, AppendWritesOnlyNewAndLastBlocks) {
  auto& alice = world_->client(kAlice);
  ASSERT_TRUE(alice.Read("/big.bin").ok());
  std::map<uint32_t, Bytes> before = StoredBlocks();

  Bytes extra(6000, 'x');
  ASSERT_TRUE(alice.Append("/big.bin", extra).ok());
  ASSERT_TRUE(alice.Close("/big.bin").ok());

  std::map<uint32_t, Bytes> after = StoredBlocks();
  EXPECT_EQ(after.size(), 6u);  // 24000 bytes => 6 blocks.
  EXPECT_EQ(after[1], before[1]);  // Early blocks untouched.
  EXPECT_EQ(after[2], before[2]);
  EXPECT_EQ(after[3], before[3]);
  // Block 4 (was the partial tail) changed; block 5 is new.
  EXPECT_NE(after[4], before[4]);
  EXPECT_TRUE(after.count(5));

  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/big.bin");
  ASSERT_TRUE(read.ok()) << read.status();
  Bytes expected = base_;
  expected.insert(expected.end(), extra.begin(), extra.end());
  EXPECT_EQ(*read, expected);
}

TEST_F(PartialUpdateTest, ShrinkFallsBackToFullRewrite) {
  auto& alice = world_->client(kAlice);
  ASSERT_TRUE(alice.Read("/big.bin").ok());
  ASSERT_TRUE(alice.WriteFile("/big.bin", ToBytes("tiny now")).ok());
  std::map<uint32_t, Bytes> after = StoredBlocks();
  EXPECT_EQ(after.size(), 1u);  // Old tail blocks deleted.
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/big.bin");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "tiny now");
}

TEST_F(PartialUpdateTest, ColdWriterDoesFullRewrite) {
  // Without the previous version cached there is no diff basis; the
  // flush rewrites everything and the result is still correct.
  auto& alice = world_->client(kAlice);
  alice.DropCaches();
  Bytes v2(18000, 'b');
  ASSERT_TRUE(alice.WriteFile("/big.bin", v2).ok());
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/big.bin");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, v2);
}

TEST_F(PartialUpdateTest, StaleBlockFromOldGenerationDetected) {
  // After a partial update, the SSP re-serves the OLD version of the
  // edited block (whose signature is valid for the old generation): the
  // descriptor's per-block generation vector catches it.
  auto& alice = world_->client(kAlice);
  ASSERT_TRUE(alice.Read("/big.bin").ok());
  std::map<uint32_t, Bytes> before = StoredBlocks();
  Bytes edited = base_;
  edited[9000] = 'Z';
  ASSERT_TRUE(alice.WriteFile("/big.bin", edited).ok());
  // Malicious SSP: restore the pre-edit block 2.
  world_->server().store().PutData(inode_, 2, before[2]);
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/big.bin");
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsCorruption()) << read.status();
}

TEST_F(PartialUpdateTest, PartialUpdateShipsFewerBytes) {
  // The efficiency claim itself: an in-place one-block edit of a warm
  // file must ship far less than a full rewrite.
  auto& alice = world_->client(kAlice);
  ASSERT_TRUE(alice.Read("/big.bin").ok());
  Bytes edited = base_;
  edited[9000] = 'Q';

  // Count upload bytes via the SSP store delta: compare total stored
  // bytes rewritten (2 blocks ~ 8 KiB) against the file size (18 KB).
  // We measure through virtual network accounting instead: zero-cost
  // model in tests, so use block counts.
  std::map<uint32_t, Bytes> before = StoredBlocks();
  ASSERT_TRUE(alice.WriteFile("/big.bin", edited).ok());
  std::map<uint32_t, Bytes> after = StoredBlocks();
  int rewritten = 0;
  for (const auto& [idx, blob] : after) {
    if (!before.count(idx) || before.at(idx) != blob) ++rewritten;
  }
  EXPECT_EQ(rewritten, 2);  // Descriptor block + the edited block.
}

}  // namespace
}  // namespace sharoes
