// Shard-aware routing proofs (satellite of the multi-daemon SSP PR):
// a kBatch split across daemons re-stitches in submission order with
// per-sub-op statuses intact, a stale ring self-heals through exactly
// one kWrongShard -> refresh -> retry cycle, the mounted client's
// one-Call-one-logical-round-trip accounting survives the fan-out
// unchanged, and the PR-6 write-stage flush barrier still orders
// staged writes before reads when the sub-ops land on different shards.

#include "core/sharded_channel.h"

#include <dirent.h>
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/retrying_connection.h"
#include "ssp/placement.h"
#include "testing/andrew_client.h"
#include "testing/cluster.h"
#include "testing/restartable.h"

namespace sharoes::core {
namespace {

using ssp::Request;
using ssp::RespStatus;
using ssp::Response;
using testing::TestCluster;

Bytes Payload(uint64_t tag) {
  Bytes payload;
  for (int b = 0; b < 32; ++b) {
    payload.push_back(static_cast<uint8_t>((tag * 37 + b * 11) & 0xFF));
  }
  return payload;
}

TestCluster::Options Unreplicated(const std::string& tag) {
  TestCluster::Options opts;
  opts.replication = 1;
  opts.write_quorum = 1;
  opts.read_quorum = 1;
  opts.wal = false;  // Pure routing tests: no durability needed.
  opts.tag = tag;
  return opts;
}

/// Inodes 1..limit bucketed by owning node, so tests can pick keys that
/// provably live on different daemons.
std::vector<std::vector<uint64_t>> InodesByShard(const TestCluster& cluster,
                                                 uint64_t limit) {
  std::vector<std::vector<uint64_t>> by_shard(
      cluster.config().nodes.size());
  for (uint64_t inode = 1; inode <= limit; ++inode) {
    by_shard[cluster.ring().PrimaryIndexFor(inode)].push_back(inode);
  }
  return by_shard;
}

TEST(ShardRouting, BatchSplitsAndRestitchesInSubmissionOrder) {
  TestCluster cluster(Unreplicated("routing_order"));
  cluster.Start();
  auto channel = cluster.MakeChannel();
  ASSERT_NE(channel, nullptr);

  auto by_shard = InodesByShard(cluster, 64);
  for (const auto& bucket : by_shard) {
    ASSERT_GE(bucket.size(), 4u) << "rebalance the test key range";
  }
  // Interleave inodes shard0, shard1, shard2, shard0, ... so every
  // adjacent pair of sub-ops crosses a shard boundary.
  std::vector<uint64_t> inodes;
  for (size_t round = 0; round < 4; ++round) {
    for (const auto& bucket : by_shard) inodes.push_back(bucket[round]);
  }

  std::vector<Request> puts;
  for (uint64_t inode : inodes) {
    puts.push_back(Request::PutData(inode, 0, Payload(inode)));
  }
  auto put_resp = channel->Call(Request::Batch(std::move(puts)));
  ASSERT_TRUE(put_resp.ok()) << put_resp.status();
  ASSERT_EQ(put_resp->status, RespStatus::kOk);
  ASSERT_EQ(put_resp->batch.size(), inodes.size());
  for (const Response& sub : put_resp->batch) {
    EXPECT_EQ(sub.status, RespStatus::kOk);
  }

  // Mixed-status batch: every present inode's payload must come back in
  // the slot it was asked in, and the absent inodes must answer
  // kNotFound in THEIR slots — a stitch that shuffled positions or
  // collapsed statuses fails loudly here.
  std::vector<Request> gets;
  for (uint64_t inode : inodes) {
    gets.push_back(Request::GetData(inode, 0));
    gets.push_back(Request::GetData(inode + 1000, 0));  // Never written.
  }
  auto get_resp = channel->Call(Request::Batch(std::move(gets)));
  ASSERT_TRUE(get_resp.ok()) << get_resp.status();
  ASSERT_EQ(get_resp->batch.size(), inodes.size() * 2);
  for (size_t i = 0; i < inodes.size(); ++i) {
    const Response& hit = get_resp->batch[2 * i];
    const Response& miss = get_resp->batch[2 * i + 1];
    ASSERT_EQ(hit.status, RespStatus::kOk) << "inode " << inodes[i];
    EXPECT_EQ(hit.payload, Payload(inodes[i])) << "inode " << inodes[i];
    EXPECT_EQ(miss.status, RespStatus::kNotFound)
        << "inode " << inodes[i] + 1000;
  }
}

TEST(ShardRouting, WriteThenReadSameKeyInOneBatch) {
  TestCluster cluster(Unreplicated("routing_rw"));
  cluster.Start();
  auto channel = cluster.MakeChannel();
  ASSERT_NE(channel, nullptr);

  // A put and a get of the same key colocate on one daemon and ship in
  // one sub-batch in submission order, so the get observes the put.
  std::vector<Request> batch;
  for (uint64_t inode = 1; inode <= 12; ++inode) {
    batch.push_back(Request::PutData(inode, 0, Payload(inode)));
    batch.push_back(Request::GetData(inode, 0));
  }
  auto resp = channel->Call(Request::Batch(std::move(batch)));
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->batch.size(), 24u);
  for (uint64_t inode = 1; inode <= 12; ++inode) {
    EXPECT_EQ(resp->batch[2 * (inode - 1)].status, RespStatus::kOk);
    const Response& get = resp->batch[2 * (inode - 1) + 1];
    ASSERT_EQ(get.status, RespStatus::kOk) << "inode " << inode;
    EXPECT_EQ(get.payload, Payload(inode));
  }
}

/// A config that maps keys differently from the cluster's real ring —
/// what a client holds after the operator reshuffles placement.
ssp::ClusterConfig StaleConfig(const TestCluster& cluster) {
  ssp::ClusterConfig stale = cluster.config();
  stale.ring_seed ^= 0xBADC0FFEEull;
  return stale;
}

/// An inode the stale ring routes to the wrong daemon.
uint64_t MisroutedInode(const TestCluster& cluster) {
  auto stale_ring = ssp::PlacementRing::Build(StaleConfig(cluster));
  EXPECT_TRUE(stale_ring.ok());
  for (uint64_t inode = 1; inode < 1000; ++inode) {
    if (stale_ring->PrimaryIndexFor(inode) !=
        cluster.ring().PrimaryIndexFor(inode)) {
      return inode;
    }
  }
  ADD_FAILURE() << "no misrouted inode below 1000";
  return 1;
}

TEST(ShardRouting, WrongShardRefreshesPlacementAndRetriesOnce) {
  TestCluster cluster(Unreplicated("routing_refresh"));
  cluster.Start();

  // The channel starts on the stale ring; its refresh source serves the
  // real config, like re-reading the updated file.
  int refresh_calls = 0;
  auto channel = core::ShardedChannel::Create(
      StaleConfig(cluster), cluster.node_factory(),
      core::ShardedChannelOptions{},
      [&cluster, &refresh_calls]() -> Result<ssp::ClusterConfig> {
        ++refresh_calls;
        return cluster.config();
      });
  ASSERT_TRUE(channel.ok()) << channel.status();

  uint64_t inode = MisroutedInode(cluster);
  auto put = (*channel)->Call(Request::PutData(inode, 0, Payload(inode)));
  ASSERT_TRUE(put.ok()) << put.status();
  // Not an error: one kWrongShard, one refresh, one retry, success.
  EXPECT_EQ(put->status, RespStatus::kOk);
  EXPECT_EQ(refresh_calls, 1);
  EXPECT_EQ((*channel)->placement_refreshes(), 1u);

  // The healed ring routes follow-ups directly: no further refreshes.
  auto get = (*channel)->Call(Request::GetData(inode, 0));
  ASSERT_TRUE(get.ok());
  ASSERT_EQ(get->status, RespStatus::kOk);
  EXPECT_EQ(get->payload, Payload(inode));
  EXPECT_EQ(refresh_calls, 1);
}

TEST(ShardRouting, WrongShardWithoutRefreshSurfaces) {
  TestCluster cluster(Unreplicated("routing_norefresh"));
  cluster.Start();
  auto channel =
      core::ShardedChannel::Create(StaleConfig(cluster),
                                   cluster.node_factory(),
                                   core::ShardedChannelOptions{});
  ASSERT_TRUE(channel.ok());

  // No ConfigSource: the channel cannot self-heal, and looping on a
  // permanently disagreeing ring would hang — the status must surface.
  uint64_t inode = MisroutedInode(cluster);
  auto put = (*channel)->Call(Request::PutData(inode, 0, Payload(inode)));
  ASSERT_TRUE(put.ok()) << put.status();
  EXPECT_EQ(put->status, RespStatus::kWrongShard);
  EXPECT_EQ((*channel)->placement_refreshes(), 0u);
}

/// Forwarding channel that counts how many transport channels are alive
/// — a leak detector for connections a placement refresh should drop.
class CountingChannel : public ssp::SspChannel {
 public:
  CountingChannel(std::unique_ptr<ssp::SspChannel> inner,
                  std::atomic<int>* live)
      : inner_(std::move(inner)), live_(live) {
    live_->fetch_add(1);
  }
  ~CountingChannel() override { live_->fetch_sub(1); }
  Result<Response> Call(const Request& req) override {
    return inner_->Call(req);
  }

 private:
  std::unique_ptr<ssp::SspChannel> inner_;
  std::atomic<int>* live_;
};

/// Open descriptors of this process (includes the enumeration dirfd —
/// only deltas are meaningful). -1 where /proc is unavailable.
int OpenFdCount() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count;
}

TEST(ShardRouting, EndpointChangeRefreshDropsStaleConnections) {
  // A RetryingConnection's factory captures its endpoint at creation,
  // so a placement refresh that moves a node id to a different address
  // must DROP that node's old connection: a kept slot would redial the
  // wrong endpoint forever and leak its socket. Start the channel on a
  // config with the two nodes' addresses swapped (ring unchanged — only
  // the dialing is wrong), let kWrongShard trigger the refresh, and
  // count both live channels and process fds.
  TestCluster::Options topts;
  topts.nodes = 2;
  topts.replication = 1;
  topts.write_quorum = 1;
  topts.read_quorum = 1;
  topts.wal = false;
  topts.tag = "routing_conns";
  TestCluster cluster(topts);
  cluster.Start();

  ssp::ClusterConfig swapped = cluster.config();
  std::swap(swapped.nodes[0].port, swapped.nodes[1].port);

  // Endpoint-faithful factory, like the production TCP one: dial the
  // address in the config, not the node id.
  std::atomic<int> live{0};
  auto factory = [&live](const ssp::ClusterNode& node)
      -> RetryingConnection::ChannelFactory {
    return [host = node.host, port = node.port,
            &live]() -> Result<std::unique_ptr<ssp::SspChannel>> {
      net::TcpTimeouts timeouts{/*connect_ms=*/2000, /*send_ms=*/5000,
                                /*recv_ms=*/5000};
      auto ch = ssp::TcpSspChannel::Connect(host, port, timeouts);
      if (!ch.ok()) return ch.status();
      return std::unique_ptr<ssp::SspChannel>(
          new CountingChannel(std::move(*ch), &live));
    };
  };
  auto channel = core::ShardedChannel::Create(
      swapped, factory, core::ShardedChannelOptions{},
      [&cluster]() -> Result<ssp::ClusterConfig> { return cluster.config(); });
  ASSERT_TRUE(channel.ok()) << channel.status();

  auto by_shard = InodesByShard(cluster, 64);
  ASSERT_FALSE(by_shard[0].empty());
  ASSERT_FALSE(by_shard[1].empty());
  uint64_t inode0 = by_shard[0][0];
  uint64_t inode1 = by_shard[1][0];

  // Dials "node 0" at node 1's address; the ownership gate answers
  // kWrongShard, the refresh swaps the endpoints back, and the same
  // Call must finish against the right daemon.
  auto put0 = (*channel)->Call(Request::PutData(inode0, 0, Payload(inode0)));
  ASSERT_TRUE(put0.ok()) << put0.status();
  EXPECT_EQ(put0->status, RespStatus::kOk)
      << "the refreshed slot still dialed the stale endpoint";
  EXPECT_EQ((*channel)->placement_refreshes(), 1u);
  auto put1 = (*channel)->Call(Request::PutData(inode1, 0, Payload(inode1)));
  ASSERT_TRUE(put1.ok()) << put1.status();
  EXPECT_EQ(put1->status, RespStatus::kOk);

  // One live transport channel per node — the pre-refresh connection
  // was destroyed (closing its socket), not left behind the new slot.
  EXPECT_EQ(live.load(), 2);

  // Steady state: more traffic on the healed ring reuses the two
  // connections; neither the channel count nor the fd table may grow.
  int fd_baseline = OpenFdCount();
  for (int round = 0; round < 5; ++round) {
    auto get0 = (*channel)->Call(Request::GetData(inode0, 0));
    ASSERT_TRUE(get0.ok());
    EXPECT_EQ(get0->payload, Payload(inode0));
    auto get1 = (*channel)->Call(Request::GetData(inode1, 0));
    ASSERT_TRUE(get1.ok());
    EXPECT_EQ(get1->payload, Payload(inode1));
  }
  EXPECT_EQ((*channel)->placement_refreshes(), 1u);
  EXPECT_EQ(live.load(), 2);
  if (fd_baseline >= 0) {
    EXPECT_LE(OpenFdCount(), fd_baseline) << "fd growth under steady state";
  }
}

TEST(ShardRouting, FanOutCountsAsOneLogicalRoundTrip) {
  // The PR-5/PR-6 RTT CI gates assume one Rpc() == one logical round
  // trip. Run the identical Andrew workload against one daemon and
  // against a 3-shard cluster: the mounted client must report the SAME
  // round-trip count, because a per-shard fan-out happens inside the
  // Call (max-per-shard accounting), not as extra client round trips.
  uint64_t single_trips = 0;
  Bytes single_transcript;
  {
    testing::RestartableDaemon daemon(testing::RestartableDaemon::Options{});
    daemon.Start();
    auto ent = testing::ProvisionOverTcp(&daemon);
    auto engine = testing::MakeEngine(&ent->clock, 7);
    RetryingConnection conn(testing::TcpFactory(&daemon), RetryOptions{});
    auto client = testing::MakeClient(ent.get(), &conn, engine.get());
    ASSERT_TRUE(client->Mount().ok());
    auto transcript = testing::RunAndrewSequence(client.get());
    ASSERT_TRUE(transcript.ok()) << transcript.status();
    single_transcript = std::move(*transcript);
    single_trips = client->rpc_round_trips();
  }

  uint64_t cluster_trips = 0;
  Bytes cluster_transcript;
  {
    TestCluster cluster(Unreplicated("routing_rtt"));
    cluster.Start();
    auto ent = testing::ProvisionOverCluster(&cluster);
    auto engine = testing::MakeEngine(&ent->clock, 7);
    auto channel = cluster.MakeChannel();
    auto client = testing::MakeClient(ent.get(), channel.get(), engine.get());
    ASSERT_TRUE(client->Mount().ok());
    auto transcript = testing::RunAndrewSequence(client.get());
    ASSERT_TRUE(transcript.ok()) << transcript.status();
    cluster_transcript = std::move(*transcript);
    cluster_trips = client->rpc_round_trips();
  }

  EXPECT_EQ(cluster_transcript, single_transcript);
  EXPECT_EQ(cluster_trips, single_trips)
      << "sharding changed the logical round-trip count — the RTT gates "
         "would compare apples to fan-outs";
}

TEST(ShardRouting, WriteStageFlushBarrierHoldsAcrossShards) {
  // The PR-6 write-behind stage delays mutations until a flush point; a
  // read of a dirty object must flush first. With sub-ops fanning out
  // per shard, the barrier must still order every staged write before
  // the read that triggered the flush — cold-read every file back and
  // compare bytes.
  TestCluster cluster(Unreplicated("routing_barrier"));
  cluster.Start();
  auto ent = testing::ProvisionOverCluster(&cluster);
  auto engine = testing::MakeEngine(&ent->clock, 9);
  auto channel = cluster.MakeChannel();
  core::ClientOptions copts;
  copts.default_group = testing::kStaff;
  copts.write_batch_ops = 16;  // Deep staging: flushes span shards.
  core::SharoesClient client(testing::kAlice, ent->alice_key,
                             &ent->identity, channel.get(), engine.get(),
                             copts);
  ASSERT_TRUE(client.Mount().ok());

  for (int i = 0; i < 8; ++i) {
    std::string path = "/f" + std::to_string(i);
    core::CreateOptions opts;
    opts.mode = fs::Mode::FromOctal(0644);
    ASSERT_TRUE(client.Create(path, opts).ok());
    ASSERT_TRUE(client.WriteFile(path, Payload(100 + i)).ok());
    // Read-your-write with the batch still warm: the flush barrier must
    // push the staged sub-ops (to however many shards) first.
    auto warm = client.Read(path);
    ASSERT_TRUE(warm.ok()) << warm.status();
    EXPECT_EQ(*warm, Payload(100 + i));
  }
  client.DropCaches();
  for (int i = 0; i < 8; ++i) {
    auto cold = client.Read("/f" + std::to_string(i));
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_EQ(*cold, Payload(100 + i)) << "file " << i;
  }
}

}  // namespace
}  // namespace sharoes::core
