// The batched read path (DESIGN.md §11): coalesced path resolution,
// readahead windows, the negative dentry cache, and the read-path error
// taxonomy. The invariant everything here defends: batching changes
// round-trip counts and nothing else — every byte a batched client
// returns matches the per-block wire behaviour, under faults included.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/client.h"
#include "core/retrying_connection.h"
#include "obs/metrics.h"
#include "ssp/message.h"
#include "testing/fault.h"
#include "testing/world.h"

namespace sharoes::core {
namespace {

using sharoes::testing::Fault;
using sharoes::testing::kAlice;
using sharoes::testing::kBob;
using sharoes::testing::kEng;
using sharoes::testing::ScriptedInjector;
using sharoes::testing::World;

Bytes BlocksOfPattern(uint32_t blocks, uint8_t salt) {
  Bytes b(static_cast<size_t>(blocks) * 4096);
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<uint8_t>((i * 37 + salt) & 0xFF);
  }
  return b;
}

World::Options BatchedOpts(bool batch_reads, size_t readahead = 32) {
  World::Options opts;
  opts.batch_reads = batch_reads;
  opts.readahead_blocks = readahead;
  return opts;
}

uint64_t ColdRead(World& world, fs::UserId uid, const std::string& path,
                  Bytes* out) {
  world.client(uid).DropCaches();
  uint64_t before = world.transport(uid).counters().round_trips;
  auto content = world.client(uid).Read(path);
  EXPECT_TRUE(content.ok()) << content.status();
  if (content.ok()) *out = std::move(*content);
  return world.transport(uid).counters().round_trips - before;
}

TEST(BatchedReadTest, ColdReadsAreByteIdenticalAndCheaper) {
  // The same tree and 18-block file in a batched and an unbatched world;
  // every cold read must return identical bytes, and the batched world
  // must spend strictly fewer wire round trips doing it.
  Bytes big = BlocksOfPattern(18, 3);
  World batched(BatchedOpts(true));
  World unbatched(BatchedOpts(false));
  for (World* w : {&batched, &unbatched}) {
    ASSERT_TRUE(w->MigrateAndMountAll(World::DefaultTree()).ok());
    CreateOptions fopts;
    fopts.mode = World::ParseMode("rw-rw----");
    ASSERT_TRUE(w->client(kAlice).Create("/shared/big.bin", fopts).ok());
    ASSERT_TRUE(w->client(kAlice).WriteFile("/shared/big.bin", big).ok());
  }

  for (const char* path : {"/shared/big.bin", "/home/alice/notes.txt",
                           "/home/alice/public.txt", "/shared/plan.md"}) {
    Bytes got_batched, got_unbatched;
    uint64_t trips_batched = ColdRead(batched, kAlice, path, &got_batched);
    uint64_t trips_unbatched =
        ColdRead(unbatched, kAlice, path, &got_unbatched);
    EXPECT_EQ(got_batched, got_unbatched) << path;
    EXPECT_LT(trips_batched, trips_unbatched) << path;
  }
  // The big sequential read is where readahead pays: at least 4x fewer
  // round trips (18 data gets + descent collapse into a handful of
  // batches).
  Bytes got;
  uint64_t tb = ColdRead(batched, kAlice, "/shared/big.bin", &got);
  uint64_t tu = ColdRead(unbatched, kAlice, "/shared/big.bin", &got);
  EXPECT_GE(tu, 4 * tb) << "batched=" << tb << " unbatched=" << tu;
}

TEST(BatchedReadTest, ReadaheadWindowBoundsBatchSize) {
  // A smaller window means more (but smaller) batches: the 18-block file
  // needs strictly more round trips at readahead 4 than at 32, and both
  // stay below the per-block count. The window is a request-size bound,
  // not a correctness knob.
  Bytes big = BlocksOfPattern(18, 9);
  uint64_t trips[2];
  size_t idx = 0;
  for (size_t readahead : {size_t{4}, size_t{32}}) {
    World world(BatchedOpts(true, readahead));
    ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
    CreateOptions fopts;
    fopts.mode = World::ParseMode("rw-rw----");
    ASSERT_TRUE(world.client(kAlice).Create("/shared/big.bin", fopts).ok());
    ASSERT_TRUE(world.client(kAlice).WriteFile("/shared/big.bin", big).ok());
    Bytes got;
    trips[idx++] = ColdRead(world, kAlice, "/shared/big.bin", &got);
    EXPECT_EQ(got, big);
  }
  EXPECT_GT(trips[0], trips[1]);  // window 4 pays more trips than 32...
  EXPECT_LT(trips[0], 18u);       // ...but far fewer than one per block.
}

TEST(BatchedReadTest, EmptyFileStaysEmptyUnderBatching) {
  // A created-but-never-written file has no block 0; the batched path
  // must preserve the kNotFound => empty-file semantics exactly.
  World world(BatchedOpts(true));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  CreateOptions fopts;
  fopts.mode = World::ParseMode("rw-rw----");
  ASSERT_TRUE(world.client(kAlice).Create("/shared/empty.txt", fopts).ok());
  world.client(kAlice).DropCaches();
  auto content = world.client(kAlice).Read("/shared/empty.txt");
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_TRUE(content->empty());
}

TEST(BatchedReadTest, NegativeDentryShortCircuitsRepeatMisses) {
  World world(BatchedOpts(true));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);

  // First miss: pays the descent, caches the negative dentry.
  auto miss = alice.Getattr("/shared/later.txt");
  EXPECT_TRUE(miss.status().IsNotFound());
  // Second miss: everything (views, tables, the absence itself) is
  // cached — zero wire round trips.
  uint64_t before = world.transport(kAlice).counters().round_trips;
  miss = alice.Getattr("/shared/later.txt");
  EXPECT_TRUE(miss.status().IsNotFound());
  EXPECT_EQ(world.transport(kAlice).counters().round_trips, before);

  // Creating the file invalidates the directory's negative dentries: the
  // lookup must succeed immediately, not serve the stale absence.
  CreateOptions fopts;
  fopts.mode = World::ParseMode("rw-rw----");
  ASSERT_TRUE(alice.Create("/shared/later.txt", fopts).ok());
  EXPECT_TRUE(alice.Getattr("/shared/later.txt").ok());

  // DropCaches clears negatives too.
  alice.DropCaches();
  EXPECT_TRUE(alice.Getattr("/shared/later.txt").ok());
}

TEST(BatchedReadTest, NegativeDentryCacheCanBeDisabled) {
  World::Options opts = BatchedOpts(true);
  opts.negative_dentry_bytes = 0;
  World world(opts);
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);
  EXPECT_TRUE(alice.Getattr("/shared/nope.txt").status().IsNotFound());
  // Without the cache the repeat miss re-asks the SSP nothing — the
  // *table* is still positively cached, so the lookup fails locally.
  // The knob's contract is only that no negative entries are stored.
  EXPECT_TRUE(alice.Getattr("/shared/nope.txt").status().IsNotFound());
}

TEST(BatchedReadTest, MultiGetValidatesSubOps) {
  World world(BatchedOpts(true));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);

  // Mutations may not ride MultiGet (they would bypass ExecuteBatch's
  // failure reporting), and neither may admin ops.
  auto r = alice.MultiGet({ssp::Request::PutData(1, 0, {1})});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status();
  r = alice.MultiGet({ssp::Request::GetStats()});
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << r.status();

  // A well-formed get batch answers per-sub-op, misses included.
  r = alice.MultiGet(
      {ssp::Request::GetData(999999, 0), ssp::Request::GetData(999999, 1)});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].status, ssp::RespStatus::kNotFound);
  EXPECT_EQ((*r)[1].status, ssp::RespStatus::kNotFound);
}

TEST(BatchedReadTest, TransientFaultIsUnavailableNotNotFound) {
  // Regression (the PR 5 bugfix): FetchFileContent used to treat *any*
  // non-ok GetData as "data block missing" — an injected kError on block
  // 0 silently read back as an EMPTY FILE. A transient fault must
  // surface as Unavailable (retryable), never as NotFound or truncation.
  for (bool batch_reads : {false, true}) {
    World world(BatchedOpts(batch_reads));
    ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
    auto& alice = world.client(kAlice);
    // Warm the metadata descent so the next wire request is the data get.
    ASSERT_TRUE(alice.Getattr("/home/alice/notes.txt").ok());

    ScriptedInjector inject_one(
        {Fault(ssp::FaultAction::Kind::kFailRequest)});
    world.server().set_fault_injector(&inject_one);
    auto content = alice.Read("/home/alice/notes.txt");
    world.server().set_fault_injector(nullptr);

    ASSERT_FALSE(content.ok()) << "batch_reads=" << batch_reads;
    EXPECT_TRUE(content.status().IsUnavailable())
        << "batch_reads=" << batch_reads << ": " << content.status();

    // And with the fault gone the same client reads the real bytes.
    auto healed = alice.Read("/home/alice/notes.txt");
    ASSERT_TRUE(healed.ok()) << healed.status();
    EXPECT_EQ(*healed, ToBytes("alice's notes"));
  }
}

/// Wraps a channel and, when armed, rewrites one sub-response of the next
/// pure-read batch to kError — the per-sub-op transient fault shape the
/// retry layer must absorb for side-effect-free batches.
class SubErrorChannel : public ssp::SspChannel {
 public:
  explicit SubErrorChannel(ssp::SspChannel* inner) : inner_(inner) {}
  void Arm() { armed_ = true; }
  bool armed() const { return armed_; }

  Result<ssp::Response> Call(const ssp::Request& req) override {
    auto resp = inner_->Call(req);
    if (!resp.ok() || !armed_ || req.op != ssp::OpCode::kBatch) return resp;
    for (const ssp::Request& sub : req.batch) {
      if (ssp::IsMutatingOp(sub.op)) return resp;
    }
    if (!resp->batch.empty()) {
      armed_ = false;
      resp->batch.back().status = ssp::RespStatus::kError;
      resp->batch.back().payload.clear();
    }
    return resp;
  }

 private:
  ssp::SspChannel* inner_;  // Not owned.
  bool armed_ = false;
};

TEST(BatchedReadTest, ReadOnlyBatchSubErrorIsRetriedInPlace) {
  World world(BatchedOpts(true));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());

  // A hand-built alice over RetryingConnection -> SubErrorChannel ->
  // the world's in-process server.
  crypto::CryptoEngineOptions eng_opts;
  eng_opts.cost_model = crypto::CryptoCostModel::Zero();
  eng_opts.signing_key_bits = 512;
  eng_opts.rng_seed = 0x5B5B;
  crypto::CryptoEngine engine(&world.clock(), eng_opts);
  net::Transport transport(&world.clock(), net::NetworkModel::Zero());
  ssp::SspConnection real(&world.server(), &transport);
  SubErrorChannel flaky(&real);
  RetryOptions retry;
  retry.max_attempts = 4;
  retry.initial_backoff_ms = 0;
  retry.jitter = 0;
  RetryingConnection conn(
      [&flaky]() -> Result<std::unique_ptr<ssp::SspChannel>> {
        // Non-owning pass-through: the retry layer may "reconnect", but
        // it always lands back on the same armed wrapper.
        struct Fwd : ssp::SspChannel {
          explicit Fwd(ssp::SspChannel* c) : c_(c) {}
          Result<ssp::Response> Call(const ssp::Request& req) override {
            return c_->Call(req);
          }
          ssp::SspChannel* c_;
        };
        return std::unique_ptr<ssp::SspChannel>(new Fwd(&flaky));
      },
      retry);
  ClientOptions copts;
  copts.scheme = Scheme::kScheme2;
  copts.default_group = kEng;
  SharoesClient alice(kAlice, world.user_key(kAlice), &world.identity(),
                      &conn, &engine, copts);
  ASSERT_TRUE(alice.Mount().ok());

  Bytes big = BlocksOfPattern(6, 5);
  CreateOptions fopts;
  fopts.mode = World::ParseMode("rw-rw----");
  ASSERT_TRUE(alice.Create("/shared/flaky.bin", fopts).ok());
  ASSERT_TRUE(alice.WriteFile("/shared/flaky.bin", big).ok());
  alice.DropCaches();

  auto* sub_retries = obs::MetricsRegistry::Global().counter(
      "client.retry.batch_sub_retries");
  uint64_t before = sub_retries->Value();
  flaky.Arm();
  auto content = alice.Read("/shared/flaky.bin");
  ASSERT_TRUE(content.ok()) << content.status();
  EXPECT_EQ(*content, big);
  EXPECT_FALSE(flaky.armed()) << "the fault was never injected";
  EXPECT_GT(sub_retries->Value(), before);
}

TEST(BatchedReadTest, WriteBufferKeysAreCanonical) {
  // Regression (the PR 5 bugfix): write_buffers_ used to key by the raw
  // path string, so "/shared//plan.md" and "/shared/plan.md" addressed
  // DIFFERENT buffers for the same file — a read through one spelling
  // missed dirty bytes written through the other.
  World world(BatchedOpts(true));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);

  Bytes v1 = ToBytes("spelled one way");
  ASSERT_TRUE(alice.Write("/shared//plan.md", v1).ok());
  // The buffer is visible through every spelling.
  auto got = alice.Read("/shared/plan.md");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, v1);
  auto attrs = alice.Getattr("/shared/plan.md/");
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->size, v1.size());

  // A second Write through another alias updates the SAME buffer, and a
  // Close through a third flushes it.
  Bytes v2 = ToBytes("spelled another way entirely");
  ASSERT_TRUE(alice.Write("/shared/plan.md/", v2).ok());
  ASSERT_TRUE(alice.Close("//shared/plan.md").ok());
  alice.DropCaches();
  got = alice.Read("/shared/plan.md");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, v2);
}

TEST(BatchedReadTest, RenameCarriesWriteBuffersAlong) {
  // Regression (the PR 5 bugfix): Rename left dirty buffers keyed by the
  // old path. A later Close of the new path flushed nothing, and a
  // recreate at the old path could inherit the stranded bytes.
  World world(BatchedOpts(true));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);

  // File rename: the buffer follows.
  Bytes plan = ToBytes("the moved plan");
  ASSERT_TRUE(alice.Write("/shared/plan.md", plan).ok());
  ASSERT_TRUE(alice.Rename("/shared/plan.md", "/shared/plan-v2.md").ok());
  ASSERT_TRUE(alice.Close("/shared/plan-v2.md").ok());
  alice.DropCaches();
  auto got = alice.Read("/shared/plan-v2.md");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, plan);

  // Directory rename: buffers for everything under it are re-keyed too.
  Bytes notes = ToBytes("buffered under a moving directory");
  ASSERT_TRUE(alice.Write("/home/alice/notes.txt", notes).ok());
  ASSERT_TRUE(alice.Rename("/home/alice", "/home/alice-new").ok());
  ASSERT_TRUE(alice.Close("/home/alice-new/notes.txt").ok());
  alice.DropCaches();
  got = alice.Read("/home/alice-new/notes.txt");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, notes);
}

TEST(BatchedReadTest, RoundTripAccountingMatchesTheWire) {
  // client.rpc.round_trips (the counter behind --rpc-stats and the
  // per-op histograms) must agree with what the transport actually saw.
  World world(BatchedOpts(true));
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);
  uint64_t wire_before = world.transport(kAlice).counters().round_trips;
  uint64_t client_before = alice.rpc_round_trips();
  alice.DropCaches();
  ASSERT_TRUE(alice.Read("/home/alice/notes.txt").ok());
  ASSERT_TRUE(alice.Readdir("/shared").ok());
  uint64_t wire_delta =
      world.transport(kAlice).counters().round_trips - wire_before;
  uint64_t client_delta = alice.rpc_round_trips() - client_before;
  EXPECT_EQ(client_delta, wire_delta);
  EXPECT_GT(client_delta, 0u);
}

}  // namespace
}  // namespace sharoes::core
