#include "core/cache.h"

#include <gtest/gtest.h>

#include <string>

namespace sharoes::core {
namespace {

TEST(LruCacheTest, PutGet) {
  // A private registry isolates this test's hit/miss counts from other
  // caches in the process (production caches share the global registry).
  obs::MetricsRegistry registry;
  LruCache cache(1000, &registry);
  cache.Put<int>("a", 7, 10);
  auto v = cache.Get<int>("a");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(cache.Get<int>("missing"), nullptr);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, ReplaceUpdatesSize) {
  LruCache cache(1000);
  cache.Put<int>("a", 1, 100);
  cache.Put<int>("a", 2, 300);
  EXPECT_EQ(cache.size_bytes(), 300u);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(*cache.Get<int>("a"), 2);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(100);
  cache.Put<int>("a", 1, 40);
  cache.Put<int>("b", 2, 40);
  EXPECT_NE(cache.Get<int>("a"), nullptr);  // a is now most recent.
  cache.Put<int>("c", 3, 40);               // Evicts b.
  EXPECT_NE(cache.Get<int>("a"), nullptr);
  EXPECT_EQ(cache.Get<int>("b"), nullptr);
  EXPECT_NE(cache.Get<int>("c"), nullptr);
  EXPECT_LE(cache.size_bytes(), 100u);
}

TEST(LruCacheTest, OversizedEntryEvictsEverything) {
  LruCache cache(100);
  cache.Put<int>("a", 1, 50);
  cache.Put<int>("big", 2, 500);  // Cannot fit; evicts all, then itself.
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache cache(0);
  cache.Put<int>("a", 1, 10);
  EXPECT_EQ(cache.Get<int>("a"), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(LruCacheTest, EraseAndErasePrefix) {
  LruCache cache(1000);
  cache.Put<int>("m|1|0", 1, 10);
  cache.Put<int>("m|1|2", 2, 10);
  cache.Put<int>("m|10|0", 3, 10);
  cache.Put<int>("t|1|0", 4, 10);
  cache.ErasePrefix("m|1|");
  EXPECT_EQ(cache.Get<int>("m|1|0"), nullptr);
  EXPECT_EQ(cache.Get<int>("m|1|2"), nullptr);
  EXPECT_NE(cache.Get<int>("m|10|0"), nullptr);  // Different inode.
  EXPECT_NE(cache.Get<int>("t|1|0"), nullptr);
  cache.Erase("t|1|0");
  EXPECT_EQ(cache.Get<int>("t|1|0"), nullptr);
  cache.Erase("not-there");  // No-op.
}

TEST(LruCacheTest, ClearResetsSize) {
  LruCache cache(1000);
  cache.Put<std::string>("k", "value", 50);
  cache.Clear();
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.Get<std::string>("k"), nullptr);
}

TEST(LruCacheTest, ShrinkCapacityEvicts) {
  LruCache cache(100);
  cache.Put<int>("a", 1, 40);
  cache.Put<int>("b", 2, 40);
  cache.set_capacity(50);
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_LE(cache.size_bytes(), 50u);
  cache.set_capacity(0);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(LruCacheTest, GrowCapacityKeepsEntriesAndAdmitsMore) {
  LruCache cache(50);
  cache.Put<int>("a", 1, 40);
  cache.Put<int>("b", 2, 40);  // Evicts a.
  EXPECT_EQ(cache.entry_count(), 1u);
  cache.set_capacity(100);  // Growing evicts nothing...
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_NE(cache.Get<int>("b"), nullptr);
  cache.Put<int>("c", 3, 40);  // ...and both now fit.
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_NE(cache.Get<int>("b"), nullptr);
  EXPECT_NE(cache.Get<int>("c"), nullptr);
}

TEST(LruCacheTest, ZeroThenNonzeroCapacityReenablesCaching) {
  LruCache cache(100);
  cache.Put<int>("a", 1, 10);
  cache.set_capacity(0);  // Disables and clears.
  EXPECT_EQ(cache.entry_count(), 0u);
  cache.Put<int>("b", 2, 10);  // Dropped while disabled.
  EXPECT_EQ(cache.Get<int>("b"), nullptr);
  cache.set_capacity(100);
  cache.Put<int>("c", 3, 10);
  EXPECT_NE(cache.Get<int>("c"), nullptr);
}

TEST(LruCacheTest, PutPtrSharesValue) {
  LruCache cache(1000);
  auto sp = std::make_shared<const std::string>("shared");
  cache.PutPtr<std::string>("k", sp, 10);
  auto got = cache.Get<std::string>("k");
  EXPECT_EQ(got.get(), sp.get());
}

}  // namespace
}  // namespace sharoes::core
