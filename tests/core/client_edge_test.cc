// Client edge cases and deep exec-only semantics.

#include <gtest/gtest.h>

#include "testing/world.h"

namespace sharoes {
namespace {

using core::CreateOptions;
using testing::kAlice;
using testing::kBob;
using testing::kCarol;
using testing::kEng;
using testing::World;

/// Forwards to a real in-process connection, then (when armed) rewrites
/// one sub-response of the next batch reply — the malicious-SSP shape the
/// fault-injection suites hit, minus the transport noise.
class TamperingChannel : public ssp::SspChannel {
 public:
  explicit TamperingChannel(ssp::SspChannel* inner) : inner_(inner) {}

  void FailNextBatchSubOp() { armed_ = true; }
  void TruncateNextBatchReply() { truncate_ = true; }
  size_t tampered_index() const { return tampered_index_; }
  ssp::OpCode tampered_op() const { return tampered_op_; }

  Result<ssp::Response> Call(const ssp::Request& req) override {
    auto resp = inner_->Call(req);
    if (!resp.ok() || req.op != ssp::OpCode::kBatch) return resp;
    // Batched reads ride kBatch too since the readahead change; this
    // suite diagnoses the *mutation* batch, so let pure-read batches by.
    bool mutates = false;
    for (const ssp::Request& sub : req.batch) {
      if (ssp::IsMutatingOp(sub.op)) mutates = true;
    }
    if (!mutates) return resp;
    if (armed_ && !resp->batch.empty()) {
      armed_ = false;
      tampered_index_ = resp->batch.size() - 1;
      tampered_op_ = req.batch[tampered_index_].op;
      resp->batch[tampered_index_].status = ssp::RespStatus::kError;
    }
    if (truncate_ && !resp->batch.empty()) {
      truncate_ = false;
      resp->batch.pop_back();
    }
    return resp;
  }

 private:
  ssp::SspChannel* inner_;  // Not owned.
  bool armed_ = false;
  bool truncate_ = false;
  size_t tampered_index_ = 0;
  ssp::OpCode tampered_op_ = ssp::OpCode::kBatch;
};

TEST(ClientEdgeTest, OperationsBeforeMountFail) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  // Build an unmounted client by hand through the world's plumbing: a
  // fresh Mount() on a user is fine, but calling ops on a never-mounted
  // client must fail cleanly. Simulate by remounting with a broken step:
  // here we simply verify FailedPrecondition surfaces via a fresh client
  // that skipped Mount — accessible through World by constructing and
  // not mounting is not exposed, so assert the mounted path works and
  // the error type exists for direct construction (covered in tcp test).
  EXPECT_TRUE(world.client(kAlice).Getattr("/").ok());
}

TEST(ClientEdgeTest, InvalidCreateModes) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  CreateOptions opts;
  // Write-only others on a file.
  opts.mode = fs::Mode::FromOctal(0602);
  Status s = world.client(kAlice).Create("/shared/bad", opts);
  EXPECT_TRUE(s.IsUnsupported()) << s;
  // Write-exec group on a directory.
  opts.mode = fs::Mode::FromOctal(0730);
  s = world.client(kAlice).Mkdir("/shared/baddir", opts);
  EXPECT_TRUE(s.IsUnsupported()) << s;
}

TEST(ClientEdgeTest, TypeConfusions) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);
  // Read/Write a directory.
  EXPECT_EQ(alice.Read("/home").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(alice.Write("/home", ToBytes("x")).code(),
            StatusCode::kInvalidArgument);
  // Readdir a file.
  EXPECT_EQ(alice.Readdir("/home/alice/notes.txt").status().code(),
            StatusCode::kInvalidArgument);
  // Unlink a directory / Rmdir a file.
  EXPECT_EQ(alice.Unlink("/home/alice").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(alice.Rmdir("/home/alice/notes.txt").code(),
            StatusCode::kInvalidArgument);
  // Path through a file.
  EXPECT_FALSE(alice.Getattr("/home/alice/notes.txt/x").ok());
}

TEST(ClientEdgeTest, AppendToMissingFileFails) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  Status s = world.client(kAlice).Append("/home/alice/ghost", ToBytes("x"));
  EXPECT_TRUE(s.IsNotFound()) << s;
}

TEST(ClientEdgeTest, CloseWithoutWriteIsNoop) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  EXPECT_TRUE(world.client(kAlice).Close("/home/alice/notes.txt").ok());
  EXPECT_TRUE(world.client(kAlice).Close("/nonexistent").ok());
}

TEST(ClientEdgeTest, ChmodOnRootByOwner) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  // Root is owned by alice in the default tree; tightening and reopening
  // it must keep everyone's superblock references valid.
  ASSERT_TRUE(world.client(kAlice)
                  .Chmod("/", World::ParseMode("rwxr-x---"))
                  .ok());
  world.client(kCarol).DropCaches();
  EXPECT_FALSE(world.client(kCarol).Getattr("/home").ok());
  ASSERT_TRUE(world.client(kAlice)
                  .Chmod("/", World::ParseMode("rwxr-xr-x"))
                  .ok());
  world.client(kCarol).DropCaches();
  EXPECT_TRUE(world.client(kCarol).Getattr("/home").ok());
}

TEST(ClientEdgeTest, GetattrSizeReflectsWrites) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);
  auto before = alice.Getattr("/home/alice/notes.txt");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->size, strlen("alice's notes"));
  // Buffered (pre-Close) size is visible to the writer.
  ASSERT_TRUE(alice.Write("/home/alice/notes.txt", Bytes(500, 'x')).ok());
  auto buffered = alice.Getattr("/home/alice/notes.txt");
  ASSERT_TRUE(buffered.ok());
  EXPECT_EQ(buffered->size, 500u);
  ASSERT_TRUE(alice.Close("/home/alice/notes.txt").ok());
  auto flushed = alice.Getattr("/home/alice/notes.txt");
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed->size, 500u);
}

TEST(ClientEdgeTest, ManyFilesInOneDirectory) {
  World::Options opts;
  opts.signing_key_pool = 8;
  World world(opts);
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  auto& alice = world.client(kAlice);
  for (int i = 0; i < 60; ++i) {
    CreateOptions copts;
    copts.mode = World::ParseMode("rw-r--r--");
    ASSERT_TRUE(
        alice.Create("/shared/f" + std::to_string(i), copts).ok());
  }
  auto names = alice.Readdir("/shared");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 61u);  // 60 + plan.md.
  // Spot-check resolution at both ends.
  EXPECT_TRUE(alice.Exists("/shared/f0"));
  EXPECT_TRUE(alice.Exists("/shared/f59"));
}

TEST(ClientEdgeTest, BatchSubOpFailureIsDiagnosable) {
  // Regression: ExecuteBatch used to collapse every sub-op failure into a
  // generic "SSP rejected batched request", leaving fault-injection
  // failures undiagnosable. The error must name the failing sub-op index,
  // its opcode, and the SSP's verdict.
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());

  // A hand-built alice whose channel we control.
  crypto::CryptoEngineOptions eng_opts;
  eng_opts.cost_model = crypto::CryptoCostModel::Zero();
  eng_opts.signing_key_bits = 512;
  eng_opts.rng_seed = 0xBA7C4;
  crypto::CryptoEngine engine(&world.clock(), eng_opts);
  net::Transport transport(&world.clock(), net::NetworkModel::Zero());
  ssp::SspConnection real(&world.server(), &transport);
  TamperingChannel tamper(&real);
  core::ClientOptions copts;
  copts.scheme = core::Scheme::kScheme2;
  copts.default_group = kEng;
  core::SharoesClient alice(kAlice, world.user_key(kAlice),
                            &world.identity(), &tamper, &engine, copts);
  ASSERT_TRUE(alice.Mount().ok());

  CreateOptions opts;
  opts.mode = World::ParseMode("rw-r--r--");
  tamper.FailNextBatchSubOp();
  Status s = alice.Create("/shared/tampered.txt", opts);
  ASSERT_FALSE(s.ok());
  const std::string want_index =
      "sub-op " + std::to_string(tamper.tampered_index()) + "/";
  EXPECT_NE(s.message().find(want_index), std::string::npos) << s;
  EXPECT_NE(s.message().find(ssp::OpCodeName(tamper.tampered_op())),
            std::string::npos)
      << s;
  EXPECT_NE(s.message().find("kError"), std::string::npos) << s;

  // A short reply (sub-responses lost) is called out as such, not
  // silently treated as success.
  tamper.TruncateNextBatchReply();
  s = alice.Create("/shared/tampered2.txt", opts);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("sub-responses"), std::string::npos) << s;
}

TEST(ExecOnlyDeepTest, ChainOfExecOnlyDirectories) {
  // /a/b/c all rwx--x--x for alice; carol can reach a known file at the
  // bottom but cannot list anything along the way.
  World world;
  core::LocalNode root =
      core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
  core::LocalNode a =
      core::LocalNode::Dir("a", kAlice, kEng, World::ParseMode("rwx--x--x"));
  core::LocalNode b =
      core::LocalNode::Dir("b", kAlice, kEng, World::ParseMode("rwx--x--x"));
  core::LocalNode cdir =
      core::LocalNode::Dir("c", kAlice, kEng, World::ParseMode("rwx--x--x"));
  cdir.children.push_back(core::LocalNode::File(
      "treasure.txt", kAlice, kEng, World::ParseMode("rw-r--r--"),
      ToBytes("found it")));
  b.children.push_back(std::move(cdir));
  a.children.push_back(std::move(b));
  root.children.push_back(std::move(a));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());

  auto& carol = world.client(kCarol);
  EXPECT_FALSE(carol.Readdir("/a").ok());
  EXPECT_FALSE(carol.Readdir("/a/b").ok());
  EXPECT_FALSE(carol.Readdir("/a/b/c").ok());
  auto read = carol.Read("/a/b/c/treasure.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "found it");
  // A wrong guess at any level finds nothing.
  EXPECT_TRUE(carol.Read("/a/b/c/nope.txt").status().IsNotFound());
  EXPECT_TRUE(carol.Read("/a/x/c/treasure.txt").status().IsNotFound());
}

TEST(ExecOnlyDeepTest, ExecOnlyTableLeaksNoNames) {
  // Structural secrecy: the stored exec-only table copy contains neither
  // plaintext names nor name-derivable patterns (row ids are HMACs).
  World world;
  core::LocalNode root =
      core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
  core::LocalNode d =
      core::LocalNode::Dir("d", kAlice, kEng, World::ParseMode("rwx--x--x"));
  d.children.push_back(core::LocalNode::File(
      "very-secret-project-name.txt", kAlice, kEng,
      World::ParseMode("rw-r--r--"), ToBytes("x")));
  root.children.push_back(std::move(d));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());

  auto attrs = world.client(kAlice).Getattr("/d");
  ASSERT_TRUE(attrs.ok());
  const std::string needle = "very-secret-project-name";
  for (uint64_t sel = 0; sel < 4; ++sel) {
    auto blob = world.server().store().GetMetadata(
        attrs->inode, core::TableSelector(sel));
    if (!blob.has_value()) continue;
    EXPECT_EQ(std::search(blob->begin(), blob->end(), needle.begin(),
                          needle.end()),
              blob->end())
        << "name leaked in table copy " << sel;
  }
}

TEST(ExecOnlyDeepTest, CreateInsideExecOnlyByOwner) {
  // The owner retains full access to their exec-only directory.
  World world;
  core::LocalNode root =
      core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
  root.children.push_back(
      core::LocalNode::Dir("priv", kAlice, kEng,
                           World::ParseMode("rwx--x--x")));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());
  CreateOptions copts;
  copts.mode = World::ParseMode("rw-r--r--");
  ASSERT_TRUE(world.client(kAlice).Create("/priv/new.txt", copts).ok());
  ASSERT_TRUE(
      world.client(kAlice).WriteFile("/priv/new.txt", ToBytes("hi")).ok());
  // bob (group --x) reaches it by name after the update.
  world.client(kBob).DropCaches();
  auto read = world.client(kBob).Read("/priv/new.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "hi");
}

}  // namespace
}  // namespace sharoes
