// Freshness / rollback-detection tests (the paper's §VIII future work:
// "we plan to implement integrity mechanisms for SHAROES, leveraging
// some of the related work [SUNDR]").
//
// Every file carries a monotonically increasing, signature-covered write
// generation. A client remembers the highest generation it has observed
// per inode; a malicious SSP serving an older (validly signed) version —
// a rollback/replay attack — is detected. Mixing blocks across
// generations is detected too.

#include <gtest/gtest.h>

#include "testing/world.h"

namespace sharoes {
namespace {

using testing::kAlice;
using testing::kBob;
using testing::kEng;
using testing::World;

class FreshnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<World>();
    core::LocalNode root =
        core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
    root.children.push_back(core::LocalNode::File(
        "log.txt", kAlice, kEng, World::ParseMode("rw-rw-r--"),
        ToBytes("v1")));
    ASSERT_TRUE(world_->MigrateAndMountAll(root).ok());
    auto attrs = world_->client(kAlice).Getattr("/log.txt");
    ASSERT_TRUE(attrs.ok());
    inode_ = attrs->inode;
  }

  /// Snapshots the file's current blocks (a malicious SSP's "backup").
  std::map<uint32_t, Bytes> SnapshotBlocks() {
    std::map<uint32_t, Bytes> out;
    for (uint32_t i = 0; i < 16; ++i) {
      auto blob = world_->server().store().GetData(inode_, i);
      if (blob.has_value()) out[i] = *blob;
    }
    return out;
  }

  void RestoreBlocks(const std::map<uint32_t, Bytes>& blocks) {
    world_->server().store().DeleteInodeData(inode_);
    for (const auto& [idx, blob] : blocks) {
      world_->server().store().PutData(inode_, idx, blob);
    }
  }

  std::unique_ptr<World> world_;
  fs::InodeNum inode_ = 0;
};

TEST_F(FreshnessTest, GenerationsIncreaseAcrossWrites) {
  auto& alice = world_->client(kAlice);
  auto gen_of = [&] {
    auto blob = world_->server().store().GetData(inode_, 0);
    EXPECT_TRUE(blob.has_value());
    auto header = core::ObjectCodec::PeekDataHeader(*blob);
    EXPECT_TRUE(header.ok());
    return header->write_gen;
  };
  EXPECT_EQ(gen_of(), 1u);  // Migration wrote generation 1.
  ASSERT_TRUE(alice.WriteFile("/log.txt", ToBytes("v2")).ok());
  EXPECT_EQ(gen_of(), 2u);
  ASSERT_TRUE(alice.WriteFile("/log.txt", ToBytes("v3")).ok());
  EXPECT_EQ(gen_of(), 3u);
}

TEST_F(FreshnessTest, RollbackDetectedByClientWithHistory) {
  auto& alice = world_->client(kAlice);
  auto& bob = world_->client(kBob);

  // Bob reads v1 (observes generation 1), alice writes v2, bob reads v2
  // (observes generation 2).
  ASSERT_TRUE(bob.Read("/log.txt").ok());
  std::map<uint32_t, Bytes> old_blocks = SnapshotBlocks();
  ASSERT_TRUE(alice.WriteFile("/log.txt", ToBytes("v2 content")).ok());
  bob.DropCaches();
  auto v2 = bob.Read("/log.txt");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(ToString(*v2), "v2 content");

  // The malicious SSP now rolls the file back to the validly-signed v1.
  RestoreBlocks(old_blocks);
  bob.DropCaches();
  auto rolled = bob.Read("/log.txt");
  EXPECT_FALSE(rolled.ok());
  EXPECT_TRUE(rolled.status().IsCorruption()) << rolled.status();
  EXPECT_NE(rolled.status().message().find("rollback"), std::string::npos);
}

TEST_F(FreshnessTest, FreshClientCannotDetectRollback) {
  // The documented limitation (same as SUNDR's fork consistency): a
  // client with no history accepts the rolled-back version.
  auto& alice = world_->client(kAlice);
  std::map<uint32_t, Bytes> old_blocks = SnapshotBlocks();
  ASSERT_TRUE(alice.WriteFile("/log.txt", ToBytes("v2 content")).ok());
  RestoreBlocks(old_blocks);
  ASSERT_TRUE(world_->Mount(kBob).ok());  // Fresh client, no memory.
  auto read = world_->client(kBob).Read("/log.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "v1");
}

TEST_F(FreshnessTest, MixedGenerationBlocksDetected) {
  auto& alice = world_->client(kAlice);
  // Write a multi-block v2, snapshot, then write multi-block v3.
  Bytes v2(9000, 'b');
  ASSERT_TRUE(alice.WriteFile("/log.txt", v2).ok());
  std::map<uint32_t, Bytes> v2_blocks = SnapshotBlocks();
  Bytes v3(9000, 'c');
  ASSERT_TRUE(alice.WriteFile("/log.txt", v3).ok());
  // The SSP serves v3's block 0 but v2's tail blocks.
  world_->server().store().PutData(inode_, 1, v2_blocks[1]);
  world_->client(kBob).DropCaches();
  auto read = world_->client(kBob).Read("/log.txt");
  EXPECT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsCorruption()) << read.status();
}

TEST_F(FreshnessTest, WriterWithoutHistoryContinuesSequence) {
  // Bob overwrites a file he never read: his client peeks the stored
  // generation so other clients' freshness memory stays consistent.
  auto& alice = world_->client(kAlice);
  auto& bob = world_->client(kBob);
  ASSERT_TRUE(alice.Read("/log.txt").ok());  // alice remembers gen 1.
  ASSERT_TRUE(bob.WriteFile("/log.txt", ToBytes("bob's rewrite")).ok());
  alice.DropCaches();
  auto read = alice.Read("/log.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "bob's rewrite");
}

TEST_F(FreshnessTest, ImmediateRevocationAdvancesGeneration) {
  auto& alice = world_->client(kAlice);
  ASSERT_TRUE(alice.Read("/log.txt").ok());
  std::map<uint32_t, Bytes> old_blocks = SnapshotBlocks();
  // chmod with revocation rewrites the data; a later SSP rollback to the
  // pre-revocation ciphertext must be detected by knowing clients.
  ASSERT_TRUE(alice.Chmod("/log.txt", World::ParseMode("rw-rw----")).ok());
  RestoreBlocks(old_blocks);
  alice.DropCaches();
  auto read = alice.Read("/log.txt");
  EXPECT_FALSE(read.ok());
}

TEST_F(FreshnessTest, TrackingCanBeDisabled) {
  // With track_freshness off, the rolled-back (validly signed) version
  // is accepted — the paper's base system without the §VIII extension.
  World::Options opts;
  World world(opts);
  core::LocalNode root =
      core::LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
  root.children.push_back(core::LocalNode::File(
      "f", kAlice, kEng, World::ParseMode("rw-r--r--"), ToBytes("v1")));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());
  // (The World harness enables tracking by default; this test documents
  // the flag at the options level.)
  core::ClientOptions copts;
  copts.track_freshness = false;
  EXPECT_FALSE(copts.track_freshness);
}

}  // namespace
}  // namespace sharoes
