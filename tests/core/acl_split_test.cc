// POSIX ACL and split-point tests (paper §III-D.2): permissions that
// diverge from the owner/group/others classes are served through
// per-user (or per-group) RSA-wrapped blocks.

#include <gtest/gtest.h>

#include "testing/world.h"

namespace sharoes {
namespace {

using core::LocalNode;
using testing::kAlice;
using testing::kBob;
using testing::kCarol;
using testing::kEng;
using testing::kSales;
using testing::World;

TEST(AclSplitTest, NamedUserAclGrantsAccess) {
  // carol is neither owner nor in eng, but an ACL entry names her.
  World world;
  LocalNode root =
      LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
  LocalNode f = LocalNode::File("secret.txt", kAlice, kEng,
                                World::ParseMode("rw-r-----"),
                                ToBytes("for carol too"));
  f.acl.push_back(fs::AclEntry{fs::AclEntry::Kind::kUser, kCarol, 4});
  root.children.push_back(std::move(f));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());

  auto read = world.client(kCarol).Read("/secret.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "for carol too");
}

TEST(AclSplitTest, NamedUserAclCanBeWeakerThanClass) {
  // bob is in eng (class perms rw-), but an ACL pins him to r--.
  World world;
  LocalNode root =
      LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
  LocalNode f = LocalNode::File("plan.txt", kAlice, kEng,
                                World::ParseMode("rw-rw----"),
                                ToBytes("plan"));
  f.acl.push_back(fs::AclEntry{fs::AclEntry::Kind::kUser, kBob, 4});
  root.children.push_back(std::move(f));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());

  ASSERT_TRUE(world.client(kBob).Read("/plan.txt").ok());
  Status w = world.client(kBob).Write("/plan.txt", ToBytes("defaced"));
  EXPECT_FALSE(w.ok());
  EXPECT_TRUE(w.IsPermissionDenied()) << w;
}

TEST(AclSplitTest, NamedGroupAcl) {
  // The sales group gets read via a group ACL entry.
  World world;
  LocalNode root =
      LocalNode::Dir("", kAlice, kEng, World::ParseMode("rwxr-xr-x"));
  LocalNode f = LocalNode::File("memo.txt", kAlice, kEng,
                                World::ParseMode("rw-r-----"),
                                ToBytes("memo"));
  f.acl.push_back(fs::AclEntry{fs::AclEntry::Kind::kGroup, kSales, 4});
  root.children.push_back(std::move(f));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());

  // carol is in sales.
  auto read = world.client(kCarol).Read("/memo.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "memo");
}

TEST(AclSplitTest, CrossOwnedHomeDirsSplitAndResolve) {
  // The canonical split: /home holds alice's and bob's homes. With a
  // second eng member (dave), the group copy of /home is read by bob and
  // dave, who diverge on /home/bob (owner vs. group) — a split row.
  World world;
  world.AddUser(200, "dave");
  ASSERT_TRUE(world.provisioner().AddGroupMember(kEng, 200).ok());
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  EXPECT_GT(world.migration_stats().split_blocks, 0u);

  // bob reaches his own private home through the split row.
  auto own = world.client(kBob).Read("/home/bob/secret.txt");
  ASSERT_TRUE(own.ok()) << own.status();
  // and alice still cannot.
  EXPECT_FALSE(world.client(kAlice).Read("/home/bob/secret.txt").ok());
}

TEST(AclSplitTest, GroupSplitBlockUsedByMembers) {
  // A child whose owner differs from the parent-copy readers: group
  // members resolve through the shared group block (fetched with the
  // group private key obtained at mount, paper §II-A).
  World world;
  LocalNode root =
      LocalNode::Dir("", kCarol, kSales, World::ParseMode("rwxr-xr-x"));
  // alice's file inside carol's tree; eng members (alice, bob) read it
  // via their group class.
  root.children.push_back(LocalNode::File(
      "eng-report.txt", kAlice, kEng, World::ParseMode("rw-r-----"),
      ToBytes("report")));
  ASSERT_TRUE(world.MigrateAndMountAll(root).ok());

  auto read = world.client(kBob).Read("/eng-report.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "report");
  // carol (owner of the dir, but not in eng) cannot read the file.
  EXPECT_FALSE(world.client(kCarol).Read("/eng-report.txt").ok());
}

TEST(AclSplitTest, AclUserCreatedAtRuntime) {
  // ACLs attached at creation time through the client API.
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  core::CreateOptions opts;
  opts.mode = World::ParseMode("rw-------");
  opts.acl.push_back(fs::AclEntry{fs::AclEntry::Kind::kUser, kCarol, 4});
  ASSERT_TRUE(world.client(kAlice).Create("/shared/for-carol", opts).ok());
  ASSERT_TRUE(world.client(kAlice)
                  .WriteFile("/shared/for-carol", ToBytes("psst"))
                  .ok());
  // carol cannot traverse /shared (rwxrwx---)... the ACL is on the file,
  // not the directory, so she is still blocked — verify both layers.
  EXPECT_FALSE(world.client(kCarol).Read("/shared/for-carol").ok());
  // bob (group member of /shared, but mode rw------- and no ACL) is
  // blocked by the file itself.
  auto bob = world.client(kBob).Read("/shared/for-carol");
  EXPECT_FALSE(bob.ok());
  EXPECT_TRUE(bob.status().IsPermissionDenied()) << bob.status();
}

TEST(AclSplitTest, AclFileInTraversableDir) {
  World world;
  ASSERT_TRUE(world.MigrateAndMountAll(World::DefaultTree()).ok());
  core::CreateOptions opts;
  opts.mode = World::ParseMode("rw-------");
  opts.acl.push_back(fs::AclEntry{fs::AclEntry::Kind::kUser, kCarol, 4});
  // /home is rwxr-xr-x: carol can traverse it.
  ASSERT_TRUE(world.client(kAlice).Create("/home/for-carol", opts).ok());
  ASSERT_TRUE(world.client(kAlice)
                  .WriteFile("/home/for-carol", ToBytes("psst"))
                  .ok());
  auto read = world.client(kCarol).Read("/home/for-carol");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "psst");
  // bob has no ACL entry and no class rights.
  EXPECT_FALSE(world.client(kBob).Read("/home/for-carol").ok());
}

}  // namespace
}  // namespace sharoes
