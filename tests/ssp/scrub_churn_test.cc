// Scrubber-under-churn proofs (satellite of the tombstone PR). The
// anti-entropy scrubber shares the process with live quorum traffic and
// a SIGKILL-flapping replica, so the suite drives exactly that mix —
// designed to run clean under -DSHAROES_SANITIZE=thread:
//
//   1. Scrubber passes on the stable nodes + a put/delete churn + the
//      Andrew workload, all while one replica flaps. Afterwards every
//      acked delete must still read deleted, every acked put must read
//      back byte-exact, and a full scrub converges the stores with no
//      tombstones left.
//   2. The daemonized form: Scrubber::Start(interval) threads on every
//      node GC a set of fully-replicated tombstones on their own, and
//      Stop() joins promptly mid-interval.

#include "ssp/scrub.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded_channel.h"
#include "ssp/placement.h"
#include "testing/andrew_client.h"
#include "testing/cluster.h"
#include "testing/stress.h"

namespace sharoes::ssp {
namespace {

using testing::ReplicaFlapper;
using testing::TestCluster;

Bytes Payload(uint64_t tag) {
  Bytes payload;
  for (int b = 0; b < 24; ++b) {
    payload.push_back(static_cast<uint8_t>((tag * 131 + b * 17) & 0xFF));
  }
  return payload;
}

/// Raw-key churn range, far above anything the provisioner or the
/// Andrew client allocates.
constexpr uint64_t kChurnBase = 100000;
constexpr uint64_t kChurnKeys = 40;

bool EventuallyFor(int deadline_ms, const std::function<bool()>& cond) {
  for (int waited = 0; waited < deadline_ms; waited += 10) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

TEST(ScrubChurn, ScrubberRunsCleanUnderReplicaChurnAndLiveTraffic) {
  TestCluster::Options opts;  // 3 nodes, K=3, W=2, R=2, WAL, tombstones.
  opts.tag = "scrub_churn";
  TestCluster cluster(opts);
  cluster.Start();
  auto ent = testing::ProvisionOverCluster(&cluster);
  auto engine = testing::MakeEngine(&ent->clock, 7);
  auto channel = cluster.MakeChannel();
  auto client = testing::MakeClient(ent.get(), channel.get(), engine.get());
  ASSERT_TRUE(client->Mount().ok());

  // Continuous anti-entropy on the two STABLE nodes (a scrubber is
  // bound to one server incarnation, so the flapping node cannot host
  // one mid-test). Their passes overlap the workload, the delete churn,
  // and node 2's kill/recover cycles.
  std::atomic<bool> stop_scrub{false};
  std::atomic<int> scrub_passes{0};
  std::thread scrub_thread([&] {
    auto s0 = cluster.MakeScrubber(0);
    auto s1 = cluster.MakeScrubber(1);
    while (!stop_scrub.load()) {
      s0->RunOnce();
      s1->RunOnce();
      scrub_passes.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Put/delete churn on raw keys: odd keys end deleted, even keys end
  // live. Every op is quorum-acked, so afterwards the scrubber must
  // have preserved exactly this state — no resurrections, no losses.
  std::atomic<int> churn_errors{0};
  std::thread churn_thread([&] {
    auto ch = cluster.MakeChannel();
    for (uint64_t k = 0; k < kChurnKeys; ++k) {
      uint64_t inode = kChurnBase + k;
      auto put = ch->Call(Request::PutData(inode, 0, Payload(k)));
      if (!put.ok() || put->status != RespStatus::kOk) {
        churn_errors.fetch_add(1);
        continue;
      }
      if (k % 2 == 1) {
        auto del = ch->Call(Request::DeleteData(inode, 0));
        if (!del.ok() || del->status != RespStatus::kOk) {
          churn_errors.fetch_add(1);
        }
      }
    }
  });

  Bytes transcript;
  {
    ReplicaFlapper flapper(cluster.node(2), /*down_ms=*/60, /*up_ms=*/50);
    auto result = testing::RunAndrewSequence(client.get());
    ASSERT_TRUE(result.ok()) << result.status();
    transcript = std::move(*result);
    for (int round = 0;
         (flapper.flaps() < 2 || scrub_passes.load() < 3) && round < 2000;
         ++round) {
      client->DropCaches();
      for (int i = 0; i < testing::kSourceFiles; ++i) {
        auto content = client->Read("/proj/src/f" + std::to_string(i) + ".c");
        ASSERT_TRUE(content.ok()) << content.status();
        ASSERT_EQ(*content, testing::SourceContent(i));
      }
    }
    EXPECT_GE(flapper.flaps(), 2);
    EXPECT_GE(scrub_passes.load(), 3);
  }  // Flapper stops; node 2 is up, recovered from its WAL.
  churn_thread.join();
  stop_scrub.store(true);
  scrub_thread.join();
  EXPECT_EQ(churn_errors.load(), 0)
      << "quorum ops failed during churn — the end-state checks below "
         "would assert the wrong expectations";

  // Quiescent convergence: two full passes from every node (node 2 is
  // stable now, so it can host a scrubber) repair any divergence the
  // churn left and GC every tombstone on a full-quorum pass.
  auto s0 = cluster.MakeScrubber(0);
  auto s1 = cluster.MakeScrubber(1);
  auto s2 = cluster.MakeScrubber(2);
  for (int round = 0; round < 2; ++round) {
    s0->RunOnce();
    s1->RunOnce();
    s2->RunOnce();
  }

  // Acked deletes stayed deleted, acked puts stayed put — through a
  // fresh channel (quorum truth) AND on every replica (store truth).
  auto verify = cluster.MakeChannel();
  for (uint64_t k = 0; k < kChurnKeys; ++k) {
    uint64_t inode = kChurnBase + k;
    auto got = verify->Call(Request::GetData(inode, 0));
    ASSERT_TRUE(got.ok()) << got.status();
    if (k % 2 == 1) {
      EXPECT_EQ(got->status, RespStatus::kNotFound)
          << "key " << inode << " resurrected through the churn";
      for (int node = 0; node < 3; ++node) {
        EXPECT_FALSE(
            cluster.node(node)->server()->store().GetData(inode, 0)
                .has_value())
            << "node " << node << " still offers deleted key " << inode;
      }
    } else {
      ASSERT_EQ(got->status, RespStatus::kOk) << "key " << inode << " lost";
      EXPECT_EQ(got->payload, Payload(k));
    }
  }
  for (int node = 0; node < 3; ++node) {
    EXPECT_EQ(cluster.node(node)->server()->store().Stats().tombstone_count,
              0u)
        << "node " << node << " kept tombstones past full-quorum GC";
  }

  // And the filesystem the workload built is still intact end to end.
  auto check_engine = testing::MakeEngine(&ent->clock, 11);
  auto check_channel = cluster.MakeChannel();
  auto check_client = testing::MakeClient(ent.get(), check_channel.get(),
                                          check_engine.get());
  ASSERT_TRUE(check_client->Mount().ok());
  for (int i = 0; i < testing::kSourceFiles; ++i) {
    auto content =
        check_client->Read("/proj/src/f" + std::to_string(i) + ".c");
    ASSERT_TRUE(content.ok()) << content.status();
    EXPECT_EQ(*content, testing::SourceContent(i));
  }
}

TEST(ScrubChurn, BackgroundScrubberGcsTombstonesOnItsInterval) {
  TestCluster::Options opts;
  opts.tag = "scrub_interval";
  TestCluster cluster(opts);
  cluster.Start();

  // Put+delete at full health: every replica ends holding a tombstone,
  // so the only work left for the scrubbers is the full-quorum GC.
  auto ch = cluster.MakeChannel();
  constexpr uint64_t kKeys = 6;
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto put = ch->Call(Request::PutData(kChurnBase + k, 0, Payload(k)));
    ASSERT_TRUE(put.ok() && put->status == RespStatus::kOk);
    auto del = ch->Call(Request::DeleteData(kChurnBase + k, 0));
    ASSERT_TRUE(del.ok() && del->status == RespStatus::kOk);
  }
  for (int node = 0; node < 3; ++node) {
    ASSERT_TRUE(EventuallyFor(2000, [&] {
      return cluster.node(node)->server()->store().Stats().tombstone_count ==
             kKeys;
    })) << "node " << node << " never saw all " << kKeys << " deletes";
  }

  // The daemonized form (`sharoes_sspd --scrub-interval-s 1`): each
  // node's background thread purges its OWN tombstones once its pass
  // sees all replicas tombstone-or-missing.
  std::vector<std::unique_ptr<Scrubber>> scrubbers;
  for (int node = 0; node < 3; ++node) {
    scrubbers.push_back(cluster.MakeScrubber(node));
    scrubbers.back()->Start(/*interval_s=*/1);
  }
  for (int node = 0; node < 3; ++node) {
    EXPECT_TRUE(EventuallyFor(15000, [&] {
      return cluster.node(node)->server()->store().Stats().tombstone_count ==
             0;
    })) << "node " << node << "'s background scrubber never GC'd";
  }

  // Stop() must interrupt the interval wait, not ride it out.
  auto begin = std::chrono::steady_clock::now();
  for (auto& s : scrubbers) s->Stop();
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);
  EXPECT_LT(waited.count(), 3000) << "Stop() rode out the scrub interval";
}

}  // namespace
}  // namespace sharoes::ssp
