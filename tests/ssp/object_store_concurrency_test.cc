// Concurrency tests for the shard-striped ObjectStore: mixed put/get/
// delete from many threads, cross-family traffic, ranged deletes racing
// point writes, stats aggregation and snapshotting under load. Run under
// -DSHAROES_SANITIZE=thread to prove the locking discipline race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "ssp/object_store.h"
#include "testing/stress.h"
#include "util/random.h"

namespace sharoes::ssp {
namespace {

using testing::RunThreads;
using testing::StressThreads;

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 400;

Bytes PayloadFor(int thread, int i) {
  return Bytes{static_cast<uint8_t>(thread), static_cast<uint8_t>(i & 0xFF),
               static_cast<uint8_t>(i >> 8)};
}

TEST(ObjectStoreConcurrencyTest, DisjointKeyWritesAllLand) {
  ObjectStore store;
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < kOpsPerThread; ++i) {
      fs::InodeNum inode = static_cast<fs::InodeNum>(t) * 100000 + i;
      store.PutMetadata(inode, 0, PayloadFor(t, i));
      auto got = store.GetMetadata(inode, 0);
      if (!got.has_value() || *got != PayloadFor(t, i)) {
        return Status::Internal("metadata readback mismatch");
      }
    }
    return Status::OK();
  });
  StorageStats stats = store.Stats();
  EXPECT_EQ(stats.object_count,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(stats.metadata_bytes,
            static_cast<uint64_t>(kThreads) * kOpsPerThread * 3);
}

TEST(ObjectStoreConcurrencyTest, MixedFamiliesMixedOps) {
  // Every thread hammers all five object families over a small shared key
  // space, so the same shards see concurrent readers, writers, and
  // deleters. Correctness of individual values cannot be asserted (they
  // race by design); the store must stay consistent and TSan-clean.
  ObjectStore store;
  StressThreads(kThreads, [&](int t) -> Status {
    Rng rng(static_cast<uint64_t>(1000 + t));
    for (int i = 0; i < kOpsPerThread; ++i) {
      uint32_t key = static_cast<uint32_t>(rng.NextU64() % 64);
      fs::InodeNum inode = key;
      switch (rng.NextU64() % 10) {
        case 0: store.PutSuperblock(key, PayloadFor(t, i)); break;
        case 1: (void)store.GetSuperblock(key); break;
        case 2: store.PutMetadata(inode, key % 4, PayloadFor(t, i)); break;
        case 3: (void)store.GetMetadata(inode, key % 4); break;
        case 4: store.PutUserMetadata(inode, key, PayloadFor(t, i)); break;
        case 5: store.PutData(inode, key % 8, PayloadFor(t, i)); break;
        case 6: (void)store.GetData(inode, key % 8); break;
        case 7: store.PutGroupKey(key, key + 1, PayloadFor(t, i)); break;
        case 8: store.DeleteMetadata(inode, key % 4); break;
        case 9: store.DeleteSuperblock(key); break;
      }
    }
    return Status::OK();
  });
  // Stats must be internally consistent after the dust settles: re-derive
  // byte totals by walking every surviving key.
  StorageStats stats = store.Stats();
  uint64_t rederived = 0, count = 0;
  for (uint32_t key = 0; key < 64; ++key) {
    fs::InodeNum inode = key;
    if (auto b = store.GetSuperblock(key)) { rederived += b->size(); ++count; }
    for (uint64_t sel = 0; sel < 4; ++sel) {
      if (auto b = store.GetMetadata(inode, sel)) {
        rederived += b->size();
        ++count;
      }
    }
    if (auto b = store.GetUserMetadata(inode, key)) {
      rederived += b->size();
      ++count;
    }
    for (uint32_t blk = 0; blk < 8; ++blk) {
      if (auto b = store.GetData(inode, blk)) { rederived += b->size(); ++count; }
    }
    if (auto b = store.GetGroupKey(key, key + 1)) {
      rederived += b->size();
      ++count;
    }
  }
  EXPECT_EQ(stats.total_bytes(), rederived);
  EXPECT_EQ(stats.object_count, count);
}

TEST(ObjectStoreConcurrencyTest, RangedDeleteRacesPointWrites) {
  // Half the threads blast per-inode replicas/blocks, half issue the
  // ranged DeleteInodeMetadata/DeleteInodeData over the same inodes.
  ObjectStore store;
  constexpr fs::InodeNum kInodes = 16;
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < kOpsPerThread; ++i) {
      fs::InodeNum inode = static_cast<fs::InodeNum>(i) % kInodes;
      if (t % 2 == 0) {
        store.PutMetadata(inode, static_cast<Selector>(t), PayloadFor(t, i));
        store.PutData(inode, static_cast<uint32_t>(t), PayloadFor(t, i));
        (void)store.MetadataReplicaCount(inode);
      } else {
        store.DeleteInodeMetadata(inode);
        store.DeleteInodeData(inode);
      }
    }
    return Status::OK();
  });
  // Quiesced: replica counts and stats agree.
  uint64_t replicas = 0;
  for (fs::InodeNum inode = 0; inode < kInodes; ++inode) {
    replicas += store.MetadataReplicaCount(inode);
  }
  StorageStats stats = store.Stats();
  EXPECT_EQ(stats.metadata_bytes, replicas * 3);
}

TEST(ObjectStoreConcurrencyTest, SnapshotWhileWriting) {
  // Serialize() and Stats() run concurrently with writers; each must see
  // a per-shard-consistent view and produce a loadable snapshot.
  ObjectStore store;
  std::atomic<bool> done{false};
  StressThreads(kThreads, [&](int t) -> Status {
    if (t == 0) {
      // Snapshot thread.
      while (!done.load()) {
        Bytes snap = store.Serialize();
        auto back = ObjectStore::Deserialize(snap);
        if (!back.ok()) return back.status();
        StorageStats reloaded = back->Stats();
        StorageStats direct = store.Stats();
        (void)reloaded;
        (void)direct;
      }
      return Status::OK();
    }
    for (int i = 0; i < kOpsPerThread; ++i) {
      fs::InodeNum inode = static_cast<fs::InodeNum>(t) * 1000 + i;
      store.PutData(inode, 0, PayloadFor(t, i));
      store.PutMetadata(inode, 1, PayloadFor(t, i));
    }
    if (t == 1) done.store(true);  // Writers finishing ends the snapshots.
    return Status::OK();
  });
  // Final snapshot round-trips exactly.
  auto back = ObjectStore::Deserialize(store.Serialize());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->Stats().object_count, store.Stats().object_count);
  EXPECT_EQ(back->Serialize(), store.Serialize());
}

TEST(ObjectStoreConcurrencyTest, FaultInjectionRacesReaders) {
  // The "malicious SSP" mutators take exclusive shard locks; readers must
  // see either the original or corrupted byte, never torn state.
  ObjectStore store;
  constexpr fs::InodeNum kInode = 7;
  store.PutData(kInode, 0, Bytes(64, 0xAA));
  store.PutMetadata(kInode, 0, Bytes(64, 0xBB));
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < kOpsPerThread; ++i) {
      if (t % 2 == 0) {
        store.CorruptData(kInode, 0, static_cast<size_t>(i));
        store.CorruptMetadata(kInode, 0, static_cast<size_t>(i));
      } else {
        auto d = store.GetData(kInode, 0);
        if (!d.has_value() || d->size() != 64) {
          return Status::Internal("torn data read");
        }
        auto m = store.GetMetadata(kInode, 0);
        if (!m.has_value() || m->size() != 64) {
          return Status::Internal("torn metadata read");
        }
      }
    }
    return Status::OK();
  });
}

TEST(ObjectStoreConcurrencyTest, ReplaceDataKeepsStatsConsistent) {
  ObjectStore store;
  constexpr fs::InodeNum kInode = 3;
  store.PutData(kInode, 0, Bytes(10, 1));
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < kOpsPerThread; ++i) {
      // Replacement blobs of varying size exercise the byte accounting.
      size_t size = 1 + static_cast<size_t>((t * kOpsPerThread + i) % 100);
      if (!store.ReplaceData(kInode, 0, Bytes(size, 2))) {
        return Status::Internal("block vanished during replace");
      }
      if (!store.GetData(kInode, 0).has_value()) {
        return Status::Internal("block unreadable during replace");
      }
    }
    return Status::OK();
  });
  auto final_blob = store.GetData(kInode, 0);
  ASSERT_TRUE(final_blob.has_value());
  EXPECT_EQ(store.Stats().data_bytes, final_blob->size());
  EXPECT_EQ(store.Stats().object_count, 1u);
}

TEST(ObjectStoreConcurrencyTest, SingleShardStoreIsStillSafe) {
  // The single-lock baseline configuration must be just as correct.
  ObjectStore store(/*num_shards=*/1);
  EXPECT_EQ(store.shard_count(), 1u);
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < kOpsPerThread; ++i) {
      fs::InodeNum inode = static_cast<fs::InodeNum>(t) * 100000 + i;
      store.PutData(inode, 0, PayloadFor(t, i));
      if (!store.GetData(inode, 0).has_value()) {
        return Status::Internal("single-shard readback failed");
      }
    }
    return Status::OK();
  });
  EXPECT_EQ(store.Stats().object_count,
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

}  // namespace
}  // namespace sharoes::ssp
