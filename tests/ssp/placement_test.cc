// Placement-ring proofs (satellite of the multi-daemon SSP PR): the
// ring is deterministic across processes, balanced enough to shard on,
// minimally disruptive on membership change, and its replica sets are
// K distinct daemons. Determinism is pinned with golden hash values —
// a libstdc++ upgrade or an accidental std::hash would change them and
// silently split the cluster's view of ownership, which is exactly the
// failure this file exists to catch before a daemon does.

#include "ssp/placement.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace sharoes::ssp {
namespace {

ClusterConfig ThreeNodes() {
  ClusterConfig config;
  config.replication = 3;
  config.write_quorum = 2;
  config.read_quorum = 2;
  config.nodes = {{0, "127.0.0.1", 7070},
                  {1, "127.0.0.1", 7071},
                  {2, "127.0.0.1", 7072}};
  return config;
}

// ---------------------------------------------------------------------
// Determinism.

TEST(PlacementHash, GoldenValues) {
  // Computed once by an independent splitmix64 implementation. If these
  // move, every deployed config file silently means something else.
  EXPECT_EQ(PlacementHash(0, 0), 0xe220a8397b1dcdafull);
  EXPECT_EQ(PlacementHash(0x5348415245533039ull, 1), 0x951216adb9606edaull);
  EXPECT_EQ(PlacementHash(0x5348415245533039ull, 0xDEADBEEFull),
            0x92216cd2c1b54686ull);
}

TEST(PlacementRing, DeterministicAcrossSerializeParse) {
  // The cross-process story in one process: a ring built from a config
  // that took a trip through the wire format places every key the same.
  ClusterConfig config = ThreeNodes();
  auto direct = PlacementRing::Build(config);
  ASSERT_TRUE(direct.ok());
  auto reparsed = ClusterConfig::Parse(config.Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  auto roundtrip = PlacementRing::Build(std::move(*reparsed));
  ASSERT_TRUE(roundtrip.ok());
  for (uint64_t key = 0; key < 10000; ++key) {
    ASSERT_EQ(direct->ReplicaIndicesFor(key),
              roundtrip->ReplicaIndicesFor(key))
        << "key " << key;
  }
}

TEST(PlacementRing, GoldenPrimaries) {
  // Pin actual placements, not just the hash: an ordering or
  // tie-breaking change in ring construction would slip past the
  // hash-only golden test.
  ClusterConfig config = ThreeNodes();
  auto ring = PlacementRing::Build(config);
  ASSERT_TRUE(ring.ok());
  std::string got;
  for (uint64_t key = 1; key <= 32; ++key) {
    got += static_cast<char>('0' + ring->PrimaryIndexFor(key));
  }
  // Recorded from the first correct build; any change is a wire break.
  EXPECT_EQ(got, "00010201020011112200111121022121");
}

// ---------------------------------------------------------------------
// Balance.

TEST(PlacementRing, VirtualNodesBalanceLoad) {
  // 100k sequential inode keys over 3 nodes at the default vnode count:
  // the fullest shard may carry at most 1.3x the emptiest. Sequential
  // ids are the realistic workload (inodes are counter-allocated) and
  // the adversarial one for a hash ring: any affinity between
  // neighboring ids would show up here as skew.
  ClusterConfig config = ThreeNodes();
  config.replication = 1;
  config.write_quorum = 1;
  config.read_quorum = 1;
  auto ring = PlacementRing::Build(config);
  ASSERT_TRUE(ring.ok());
  std::map<uint32_t, uint64_t> load;
  for (uint64_t inode = 1; inode <= 100000; ++inode) {
    ++load[ring->PrimaryIndexFor(inode)];
  }
  ASSERT_EQ(load.size(), 3u) << "a node owns nothing";
  uint64_t min = ~0ull, max = 0;
  for (const auto& [node, n] : load) {
    min = std::min(min, n);
    max = std::max(max, n);
  }
  EXPECT_LT(static_cast<double>(max) / static_cast<double>(min), 1.3)
      << "max " << max << " min " << min;
}

// ---------------------------------------------------------------------
// Minimal movement.

TEST(PlacementRing, AddingANodeOnlyMovesKeysToIt) {
  ClusterConfig small = ThreeNodes();
  small.replication = 1;
  small.write_quorum = 1;
  small.read_quorum = 1;
  ClusterConfig big = small;
  big.nodes.push_back({3, "127.0.0.1", 7073});
  auto before = PlacementRing::Build(small);
  auto after = PlacementRing::Build(big);
  ASSERT_TRUE(before.ok() && after.ok());
  uint64_t moved = 0;
  const uint64_t kKeys = 20000;
  for (uint64_t key = 1; key <= kKeys; ++key) {
    uint32_t was = before->PrimaryIndexFor(key);
    uint32_t now = after->PrimaryIndexFor(key);
    if (big.nodes[now].id != small.nodes[was].id) {
      // A key may only move to the node that joined; survivors never
      // trade keys among themselves.
      EXPECT_EQ(big.nodes[now].id, 3u) << "key " << key << " moved "
                                       << was << " -> " << now;
      ++moved;
    }
  }
  // The newcomer takes ~1/4 of the keyspace — not nothing, not half.
  double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.15) << moved;
  EXPECT_LT(fraction, 0.35) << moved;
}

TEST(PlacementRing, RemovingANodeKeepsSurvivorsKeys) {
  ClusterConfig all = ThreeNodes();
  all.replication = 1;
  all.write_quorum = 1;
  all.read_quorum = 1;
  ClusterConfig without = all;
  without.nodes.erase(without.nodes.begin() + 1);  // Drop node id 1.
  auto before = PlacementRing::Build(all);
  auto after = PlacementRing::Build(without);
  ASSERT_TRUE(before.ok() && after.ok());
  for (uint64_t key = 1; key <= 20000; ++key) {
    uint32_t was_id = all.nodes[before->PrimaryIndexFor(key)].id;
    uint32_t now_id = without.nodes[after->PrimaryIndexFor(key)].id;
    if (was_id != 1) {
      // The ring hashes node ids, not list positions: every key a
      // survivor owned stays put when someone else leaves.
      ASSERT_EQ(now_id, was_id) << "key " << key;
    } else {
      ASSERT_NE(now_id, 1u) << "key " << key;
    }
  }
}

// ---------------------------------------------------------------------
// Replica sets.

TEST(PlacementRing, ReplicaSetsAreKDistinctNodes) {
  ClusterConfig config = ThreeNodes();
  config.nodes.push_back({3, "127.0.0.1", 7073});
  config.nodes.push_back({4, "127.0.0.1", 7074});
  auto ring = PlacementRing::Build(config);
  ASSERT_TRUE(ring.ok());
  for (uint64_t key = 1; key <= 5000; ++key) {
    std::vector<uint32_t> replicas = ring->ReplicaIndicesFor(key);
    ASSERT_EQ(replicas.size(), 3u) << "key " << key;
    std::set<uint32_t> unique(replicas.begin(), replicas.end());
    ASSERT_EQ(unique.size(), 3u) << "key " << key << " repeats a node";
    EXPECT_EQ(replicas[0], ring->PrimaryIndexFor(key));
    for (uint32_t idx : replicas) {
      EXPECT_TRUE(ring->Owns(config.nodes[idx].id, key));
    }
  }
}

TEST(PlacementRing, ReplicationClampedToClusterSize) {
  ClusterConfig config = ThreeNodes();
  auto ring = PlacementRing::Build(config);
  ASSERT_TRUE(ring.ok());
  // Every node is a replica of every key when K == N, so no key has a
  // non-owner to bounce off.
  for (uint64_t key = 1; key <= 100; ++key) {
    for (const ClusterNode& node : config.nodes) {
      EXPECT_TRUE(ring->Owns(node.id, key));
    }
  }
  EXPECT_FALSE(ring->Owns(/*node_id=*/99, /*key=*/1));
}

// ---------------------------------------------------------------------
// Routing keys.

TEST(RoutingKey, DomainsDoNotCollide) {
  Bytes payload{1, 2, 3};
  // All of inode 7's spellings route together...
  uint64_t inode_key = RoutingKeyOf(Request::GetMetadata(7, 0));
  EXPECT_EQ(RoutingKeyOf(Request::PutData(7, 3, payload)), inode_key);
  EXPECT_EQ(RoutingKeyOf(Request::GetUserMetadata(7, 100)), inode_key);
  EXPECT_EQ(RoutingKeyOf(Request::DeleteInodeMetadata(7)), inode_key);
  EXPECT_EQ(RoutingKeyOf(Request::DeleteInodeData(7)), inode_key);
  // ...but user 7's superblock and group 7's key blob live in disjoint
  // tag domains: same small integer, three different shards allowed.
  uint64_t user_key = RoutingKeyOf(Request::GetSuperblock(7));
  uint64_t group_key = RoutingKeyOf(Request::GetGroupKey(7, 100));
  EXPECT_NE(user_key, inode_key);
  EXPECT_NE(group_key, inode_key);
  EXPECT_NE(group_key, user_key);
  EXPECT_EQ(RoutingKeyOf(Request::PutSuperblock(7, payload)), user_key);
  EXPECT_EQ(RoutingKeyOf(Request::PutGroupKey(7, 100, payload)), group_key);
  EXPECT_EQ(RoutingKeyOf(Request::DeleteGroupKey(7, 100)), group_key);
}

// ---------------------------------------------------------------------
// Config validation and wire format.

TEST(ClusterConfig, ValidateRejectsBrokenConfigs) {
  EXPECT_FALSE(ClusterConfig{}.Validate().ok()) << "no nodes";

  ClusterConfig config = ThreeNodes();
  EXPECT_TRUE(config.Validate().ok());

  ClusterConfig bad = config;
  bad.replication = 4;
  EXPECT_FALSE(bad.Validate().ok()) << "K > nodes";

  bad = config;
  bad.write_quorum = 4;
  EXPECT_FALSE(bad.Validate().ok()) << "W > K";

  bad = config;
  bad.read_quorum = 0;
  EXPECT_FALSE(bad.Validate().ok()) << "R < 1";

  bad = config;
  bad.write_quorum = 1;
  bad.read_quorum = 1;
  EXPECT_FALSE(bad.Validate().ok()) << "R + W <= K breaks intersection";

  bad = config;
  bad.virtual_nodes = 0;
  EXPECT_FALSE(bad.Validate().ok()) << "no vnodes";
  bad.virtual_nodes = 5000;
  EXPECT_FALSE(bad.Validate().ok()) << "absurd vnodes";

  bad = config;
  bad.nodes[2].id = bad.nodes[0].id;
  EXPECT_FALSE(bad.Validate().ok()) << "duplicate id";

  bad = config;
  bad.nodes[1].host.clear();
  EXPECT_FALSE(bad.Validate().ok()) << "empty host";
}

TEST(ClusterConfig, SerializeParseRoundTrip) {
  ClusterConfig config = ThreeNodes();
  config.virtual_nodes = 128;
  config.ring_seed = 12345;
  auto parsed = ClusterConfig::Parse(config.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->replication, config.replication);
  EXPECT_EQ(parsed->write_quorum, config.write_quorum);
  EXPECT_EQ(parsed->read_quorum, config.read_quorum);
  EXPECT_EQ(parsed->virtual_nodes, config.virtual_nodes);
  EXPECT_EQ(parsed->ring_seed, config.ring_seed);
  ASSERT_EQ(parsed->nodes.size(), config.nodes.size());
  for (size_t i = 0; i < config.nodes.size(); ++i) {
    EXPECT_EQ(parsed->nodes[i].id, config.nodes[i].id);
    EXPECT_EQ(parsed->nodes[i].host, config.nodes[i].host);
    EXPECT_EQ(parsed->nodes[i].port, config.nodes[i].port);
  }
}

TEST(ClusterConfig, ParseAcceptsCommentsAndRejectsGarbage) {
  auto ok = ClusterConfig::Parse(
      "# a comment\n"
      "cluster v1\n"
      "\n"
      "replication 1\n"
      "node 0 sspd-a.example.com 7070\n");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->nodes[0].host, "sspd-a.example.com");

  EXPECT_FALSE(ClusterConfig::Parse("").ok()) << "empty";
  EXPECT_FALSE(ClusterConfig::Parse("node 0 h 1\n").ok()) << "no header";
  EXPECT_FALSE(ClusterConfig::Parse("cluster v2\nnode 0 h 1\n").ok())
      << "wrong version";
  EXPECT_FALSE(
      ClusterConfig::Parse("cluster v1\nflux 3\nnode 0 h 1\n").ok())
      << "unknown key";
  EXPECT_FALSE(ClusterConfig::Parse("cluster v1\nnode 0 h 99999\n").ok())
      << "port overflow";
  EXPECT_FALSE(ClusterConfig::Parse("cluster v1\nnode 0\n").ok())
      << "truncated node line";
}

TEST(ClusterConfig, FindNodeByStableId) {
  ClusterConfig config = ThreeNodes();
  ASSERT_NE(config.FindNode(2), nullptr);
  EXPECT_EQ(config.FindNode(2)->port, 7072);
  EXPECT_EQ(config.FindNode(9), nullptr);
}

}  // namespace
}  // namespace sharoes::ssp
