// Crash-recovery equivalence for the WAL-backed SSP (DESIGN.md §10).
//
// The contract under test: an acknowledged mutation survives SIGKILL.
// A client hammers a WAL-mode daemon with deterministic mutating ops
// while a controller thread hard-kills it at seeded random points; after
// each restart the recovered store must be byte-identical
// (ObjectStore::Serialize) to an in-memory reference store that applied
// exactly the acknowledged ops — plus, at most, a prefix of the one
// request that was in flight when the daemon died (executed but
// unacknowledged is the only permitted divergence; *lost but
// acknowledged* never is).
//
// In-process SIGKILL fidelity: Wal::Append issues one direct ::write per
// record, so the daemon teardown in KillHard() leaves exactly the bytes
// a real SIGKILL would leave in the page cache. The sync policies differ
// only under power loss, which is why all three must pass the same
// equivalence check here, and why `always` is additionally the policy
// CI's crash-churn step leans on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/retrying_connection.h"
#include "obs/metrics.h"
#include "ssp/object_store.h"
#include "ssp/tcp_service.h"
#include "ssp/wal.h"
#include "testing/andrew_client.h"
#include "testing/restartable.h"
#include "util/random.h"

namespace sharoes::ssp {
namespace {

using sharoes::testing::RestartableDaemon;

int CrashRounds(int base) {
  if (const char* env = std::getenv("SHAROES_CRASH_ROUNDS")) {
    return base * std::max(1, std::atoi(env));
  }
  return base;
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "sharoes_wal_" + tag + "_" +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

/// Deterministic mutating op #idx: cycles through every loggable shape
/// (including batches) with payloads derived from the index, so two
/// generators at the same index always produce the same op.
Request NthOp(uint64_t idx) {
  Bytes payload;
  size_t len = 16 + (idx * 29) % 120;
  payload.reserve(len);
  for (size_t b = 0; b < len; ++b) {
    payload.push_back(static_cast<uint8_t>((idx * 131 + b * 7) & 0xFF));
  }
  fs::InodeNum inode = 1 + idx % 37;
  switch (idx % 9) {
    case 0:
      return Request::PutMetadata(inode, idx % 5, payload);
    case 1:
      return Request::PutData(inode, static_cast<uint32_t>(idx % 8), payload);
    case 2:
      return Request::PutUserMetadata(inode, 100 + idx % 4, payload);
    case 3:
      return Request::PutSuperblock(100 + idx % 4, payload);
    case 4:
      return Request::PutGroupKey(500 + idx % 3, 100 + idx % 4, payload);
    case 5:
      return Request::DeleteMetadata(inode, (idx + 1) % 5);
    case 6:
      return Request::Batch({Request::PutMetadata(inode, 7, payload),
                             Request::PutData(inode, 9, payload),
                             Request::DeleteMetadata(1 + (idx + 3) % 37, 7)});
    case 7:
      return Request::DeleteInodeData(1 + (idx + 11) % 37);
    default:
      return Request::PutData(inode, 10 + static_cast<uint32_t>(idx % 3),
                              payload);
  }
}

/// Applies the first `subops` constituent mutations of `req` (for a
/// non-batch request, subops is 0 or 1) to `store`.
void ApplyPrefix(const Request& req, size_t subops, ObjectStore* store) {
  if (req.op == OpCode::kBatch) {
    for (size_t i = 0; i < subops && i < req.batch.size(); ++i) {
      ASSERT_TRUE(ApplyWalOp(req.batch[i], store).ok());
    }
  } else if (subops > 0) {
    ASSERT_TRUE(ApplyWalOp(req, store).ok());
  }
}

size_t SubopCount(const Request& req) {
  return req.op == OpCode::kBatch ? req.batch.size() : 1;
}

struct KillPointOutcome {
  uint64_t acked = 0;        // Ops the daemon acknowledged this round.
  bool had_in_flight = false;
  Request in_flight;         // The op whose call failed, if any.
};

/// One kill point: stream ops from `next_index` until the controller
/// hard-kills the daemon after `kill_after_us`; returns what was acked
/// and what was in flight.
KillPointOutcome RunUntilKilled(RestartableDaemon* daemon,
                                uint64_t next_index,
                                uint64_t kill_after_us) {
  KillPointOutcome out;
  std::atomic<bool> done{false};
  std::thread controller([&] {
    std::this_thread::sleep_for(std::chrono::microseconds(kill_after_us));
    daemon->KillHard();
    done.store(true);
  });
  auto channel = TcpSspChannel::Connect("127.0.0.1", daemon->port());
  if (channel.ok()) {
    for (uint64_t i = next_index;; ++i) {
      Request op = NthOp(i);
      auto resp = (*channel)->Call(op);
      if (resp.ok() && resp->ok()) {
        ++out.acked;
        continue;
      }
      // This call died under the kill (or was executed and its response
      // lost) — it is the only op allowed to be partially recovered.
      out.had_in_flight = true;
      out.in_flight = std::move(op);
      break;
    }
  }
  controller.join();
  // The channel may have raced ahead of the controller's sleep; make
  // sure the daemon really is down before the caller restarts it.
  daemon->KillHard();
  return out;
}

/// Recovered bytes must match the reference plus some prefix of the
/// in-flight op's sub-ops; advances the reference to the matching state.
void ExpectRecoveredState(const Bytes& recovered, ObjectStore* reference,
                          const KillPointOutcome& outcome,
                          const std::string& context) {
  size_t max_prefix = outcome.had_in_flight ? SubopCount(outcome.in_flight)
                                            : 0;
  // Try prefixes in order; stop at the first match.
  for (size_t prefix = 0; prefix <= max_prefix; ++prefix) {
    auto candidate = ObjectStore::Deserialize(reference->Serialize());
    ASSERT_TRUE(candidate.ok());
    if (outcome.had_in_flight) {
      ApplyPrefix(outcome.in_flight, prefix, &*candidate);
    }
    if (candidate->Serialize() == recovered) {
      // Sync the reference to what the store actually holds.
      if (outcome.had_in_flight && prefix > 0) {
        ApplyPrefix(outcome.in_flight, prefix, reference);
      }
      return;
    }
  }
  FAIL() << context << ": recovered store matches neither the acked "
         << "prefix nor any in-flight extension of it — an acknowledged "
         << "op was lost or a phantom op was applied";
}

class WalRecoveryTest : public ::testing::TestWithParam<WalSyncPolicy> {};

TEST_P(WalRecoveryTest, NoAckedOpLostAcrossSeededSigkills) {
  WalOptions wal_opts;
  wal_opts.sync = GetParam();
  wal_opts.interval_ms = 5;
  RestartableDaemon::Options opts;
  opts.wal_dir = FreshDir(std::string("kill_") + WalSyncPolicyName(
                              wal_opts.sync));
  opts.wal = wal_opts;
  RestartableDaemon daemon(opts);

  ObjectStore reference;
  uint64_t next_index = 0;
  const int kill_points = CrashRounds(20);
  Rng rng(0xC0FFEE ^ static_cast<uint64_t>(wal_opts.sync));
  for (int round = 0; round < kill_points; ++round) {
    daemon.Start();
    // Recovery equivalence from the previous round's crash (round 0
    // checks the empty store).
    {
      SCOPED_TRACE("recovery check, round " + std::to_string(round));
      Bytes recovered = daemon.server()->store().Serialize();
      ASSERT_EQ(recovered, reference.Serialize())
          << "restart lost or invented state before any new ops ran";
    }
    // Mixed kill timing: some kills land mid-handshake, most mid-stream.
    uint64_t kill_after_us = rng.NextInRange(200, 30000);
    uint64_t first = next_index;
    KillPointOutcome outcome = RunUntilKilled(&daemon, first, kill_after_us);

    // Advance the reference by everything acknowledged; the in-flight op
    // (if any) is skipped by the generator next round either way.
    for (uint64_t i = first; i < first + outcome.acked; ++i) {
      Request op = NthOp(i);
      ApplyPrefix(op, SubopCount(op), &reference);
    }
    next_index = first + outcome.acked + (outcome.had_in_flight ? 1 : 0);

    daemon.Start();
    Bytes recovered = daemon.server()->store().Serialize();
    ExpectRecoveredState(recovered, &reference, outcome,
                         "round " + std::to_string(round) + " (sync=" +
                             WalSyncPolicyName(wal_opts.sync) + ")");
    // Torn tails are legal here (a record's write can be cut mid-frame
    // by the teardown) but mid-log corruption never is — Open() would
    // have failed the ASSERT inside Start() if replay refused.
    daemon.KillHard();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSyncPolicies, WalRecoveryTest,
    ::testing::Values(WalSyncPolicy::kAlways, WalSyncPolicy::kInterval,
                      WalSyncPolicy::kOff),
    [](const ::testing::TestParamInfo<WalSyncPolicy>& info) {
      return WalSyncPolicyName(info.param);
    });

TEST(WalRecovery, GracefulShutdownCompactsToSnapshot) {
  RestartableDaemon::Options opts;
  opts.wal_dir = FreshDir("graceful");
  RestartableDaemon daemon(opts);
  daemon.Start();
  {
    auto channel = TcpSspChannel::Connect("127.0.0.1", daemon.port());
    ASSERT_TRUE(channel.ok());
    for (uint64_t i = 0; i < 50; ++i) {
      auto resp = (*channel)->Call(NthOp(i));
      ASSERT_TRUE(resp.ok() && resp->ok()) << "op " << i;
    }
  }
  Bytes before = daemon.server()->store().Serialize();
  daemon.Kill();  // Graceful: sync + compact.

  daemon.Start();
  WalRecoveryInfo rec = daemon.last_recovery();
  EXPECT_TRUE(rec.had_snapshot) << "graceful shutdown did not compact";
  EXPECT_EQ(rec.records_applied, 0u)
      << "snapshot should cover the whole log";
  EXPECT_FALSE(rec.tail_truncated);
  EXPECT_EQ(rec.last_seq, rec.snapshot_seq);
  EXPECT_EQ(daemon.server()->store().Serialize(), before);
}

TEST(WalRecovery, CompactionUnderLoadSurvivesHardKills) {
  // A tiny compaction threshold forces snapshot + segment rotation to
  // happen repeatedly *while* ops stream in and the daemon is being
  // hard-killed — crossing the crash windows between rotate, snapshot
  // publish, and prune. Recovery must still reproduce the acked state.
  WalOptions wal_opts;
  wal_opts.sync = WalSyncPolicy::kAlways;
  wal_opts.compact_threshold_bytes = 2048;
  RestartableDaemon::Options opts;
  opts.wal_dir = FreshDir("compact_churn");
  opts.wal = wal_opts;
  RestartableDaemon daemon(opts);

  ObjectStore reference;
  uint64_t next_index = 0;
  uint64_t total_compactions = 0;
  Rng rng(77);
  const int rounds = CrashRounds(8);
  for (int round = 0; round < rounds; ++round) {
    daemon.Start();
    total_compactions += daemon.last_recovery().had_snapshot ? 1 : 0;
    uint64_t first = next_index;
    KillPointOutcome outcome =
        RunUntilKilled(&daemon, first, rng.NextInRange(3000, 40000));
    for (uint64_t i = first; i < first + outcome.acked; ++i) {
      Request op = NthOp(i);
      ApplyPrefix(op, SubopCount(op), &reference);
    }
    next_index = first + outcome.acked + (outcome.had_in_flight ? 1 : 0);
    daemon.Start();
    ExpectRecoveredState(daemon.server()->store().Serialize(), &reference,
                         outcome, "compaction round " +
                                      std::to_string(round));
    daemon.KillHard();
  }
  // The threshold really fired: later rounds recovered from a snapshot.
  EXPECT_GT(total_compactions, 0u)
      << "compaction never triggered; threshold too high for the workload";
}

TEST(WalRecovery, AndrewSequenceSurvivesHardKillChurn) {
  // Full-stack version: a mounted SharoesClient behind RetryingConnection
  // runs the Andrew sequence while a controller SIGKILLs the daemon
  // repeatedly. No graceful snapshot ever happens, so every restart
  // recovers purely from the log — and the transcript plus the final
  // store must be byte-identical to a crash-free run.
  using sharoes::testing::MakeClient;
  using sharoes::testing::MakeEngine;
  using sharoes::testing::ProvisionOverTcp;
  using sharoes::testing::RunAndrewSequence;
  using sharoes::testing::TcpFactory;

  auto run = [](const std::string& dir, bool churn, Bytes* transcript_out,
                Bytes* store_out) {
    RestartableDaemon::Options opts;
    opts.wal_dir = dir;
    RestartableDaemon daemon(opts);
    daemon.Start();
    auto enterprise = ProvisionOverTcp(&daemon);

    SimClock clock;
    auto engine = MakeEngine(&clock, 99);
    core::RetryOptions retry;
    retry.max_attempts = 12;
    retry.initial_backoff_ms = 5;
    retry.max_backoff_ms = 200;
    retry.seed = 7;
    core::RetryingConnection conn(TcpFactory(&daemon), retry);
    auto client = MakeClient(enterprise.get(), &conn, engine.get());
    ASSERT_TRUE(client->Mount().ok());

    std::atomic<bool> done{false};
    std::thread controller([&] {
      if (!churn) return;
      for (int i = 0; i < 3 && !done.load(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        daemon.RestartHard();
      }
    });
    auto transcript = RunAndrewSequence(client.get());
    done.store(true);
    controller.join();
    ASSERT_TRUE(transcript.ok()) << transcript.status();
    *transcript_out = std::move(*transcript);
    if (churn) {
      EXPECT_GE(conn.reconnects(), 1u);
    }
    // Read the final state through one more hard-kill cycle so even the
    // "clean" run's bytes come from log recovery, not live memory.
    daemon.RestartHard();
    *store_out = daemon.server()->store().Serialize();
  };

  Bytes clean_transcript, clean_store;
  run(FreshDir("andrew_clean"), /*churn=*/false, &clean_transcript,
      &clean_store);
  ASSERT_FALSE(clean_transcript.empty());

  int rounds = CrashRounds(1);
  for (int round = 0; round < rounds; ++round) {
    Bytes churn_transcript, churn_store;
    run(FreshDir("andrew_churn" + std::to_string(round)), /*churn=*/true,
        &churn_transcript, &churn_store);
    EXPECT_EQ(churn_transcript, clean_transcript) << "round " << round;
    EXPECT_EQ(churn_store, clean_store) << "round " << round;
  }
}

// The batched read path leans on kBatch for every cold read, so a batch
// of pure gets against a WAL-enabled daemon must be WAL-neutral: no
// appends, no fsyncs. Otherwise turning on readahead would multiply the
// durability cost of a *read* workload.
TEST(WalBatchCost, PureGetBatchIsWalNeutral) {
  std::string dir = FreshDir("getbatch");
  SspServer server;
  WalOptions wal_opts;
  wal_opts.sync = WalSyncPolicy::kAlways;
  auto wal = Wal::Open(dir, wal_opts, &server.store());
  ASSERT_TRUE(wal.ok()) << wal.status();
  server.set_wal(wal->get());
  // Seed one object so the batch sees both kOk and kNotFound sub-results.
  ASSERT_EQ(server.Handle(Request::PutData(1, 0, {1, 2, 3})).status,
            RespStatus::kOk);

  auto& reg = obs::MetricsRegistry::Global();
  uint64_t appends0 = reg.counter("ssp.wal.appends")->Value();
  uint64_t fsyncs0 = reg.counter("ssp.wal.fsyncs")->Value();
  Response resp = server.Handle(
      Request::Batch({Request::GetData(1, 0), Request::GetMetadata(1, 0),
                      Request::GetData(99, 7)}));
  ASSERT_EQ(resp.status, RespStatus::kOk);
  ASSERT_EQ(resp.batch.size(), 3u);
  EXPECT_EQ(resp.batch[0].status, RespStatus::kOk);
  EXPECT_EQ(reg.counter("ssp.wal.appends")->Value(), appends0);
  EXPECT_EQ(reg.counter("ssp.wal.fsyncs")->Value(), fsyncs0);
  server.set_wal(nullptr);
}

// A mixed batch logs each mutating sub-op but pays for durability once:
// exactly one fsync per top-level request under sync=always.
TEST(WalBatchCost, MixedBatchCostsExactlyOneFsync) {
  std::string dir = FreshDir("mixedbatch");
  SspServer server;
  WalOptions wal_opts;
  wal_opts.sync = WalSyncPolicy::kAlways;
  auto wal = Wal::Open(dir, wal_opts, &server.store());
  ASSERT_TRUE(wal.ok()) << wal.status();
  server.set_wal(wal->get());

  auto& reg = obs::MetricsRegistry::Global();
  uint64_t appends0 = reg.counter("ssp.wal.appends")->Value();
  uint64_t fsyncs0 = reg.counter("ssp.wal.fsyncs")->Value();
  Response resp = server.Handle(Request::Batch(
      {Request::PutData(5, 0, {1}), Request::GetData(5, 0),
       Request::PutMetadata(5, 0, {2}), Request::DeleteMetadata(6, 1)}));
  ASSERT_EQ(resp.status, RespStatus::kOk);
  EXPECT_EQ(reg.counter("ssp.wal.appends")->Value(), appends0 + 3);
  EXPECT_EQ(reg.counter("ssp.wal.fsyncs")->Value(), fsyncs0 + 1);
  server.set_wal(nullptr);
}

// The group-commit generalization of the "batch = one fsync" invariant:
// K concurrent acked requests cost at most ceil(K / group) fsyncs. Here
// every append lands before any committer runs, so the whole set is one
// group — the first committer to lead captures the log frontier and its
// single fsync covers all K sequences; every other CommitThrough must
// return without touching the disk. A silent degradation to per-request
// sync shows up as delta == K and fails loudly.
TEST(WalBatchCost, ConcurrentCommitsShareOneFsync) {
  std::string dir = FreshDir("groupcommit");
  ObjectStore store;
  WalOptions wal_opts;
  wal_opts.sync = WalSyncPolicy::kAlways;
  auto wal = Wal::Open(dir, wal_opts, &store);
  ASSERT_TRUE(wal.ok()) << wal.status();

  constexpr int kWriters = 8;
  std::vector<uint64_t> seqs(kWriters, 0);
  for (int w = 0; w < kWriters; ++w) {
    Request op = Request::PutData(800 + w, 0, {static_cast<uint8_t>(w)});
    ASSERT_TRUE((*wal)->Append(op, &seqs[w]).ok());
  }
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t fsyncs0 = reg.counter("ssp.wal.fsyncs")->Value();
  std::vector<std::thread> committers;
  committers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    committers.emplace_back([&, w] {
      EXPECT_TRUE((*wal)->CommitThrough(seqs[w]).ok());
    });
  }
  for (std::thread& t : committers) t.join();
  uint64_t delta = reg.counter("ssp.wal.fsyncs")->Value() - fsyncs0;
  EXPECT_EQ(delta, 1u)
      << "group commit degraded: " << kWriters
      << " concurrent acked requests must share ceil(K/group) = 1 fsync, "
      << "not pay " << delta;
  EXPECT_EQ((*wal)->durable_sequence(), seqs.back());
}

// End-to-end flavour through SspServer::Handle: K threads each ack one
// mutating request against a group-commit window. Appends interleave
// with syncs here, so the exact count is scheduling-dependent — but
// fsyncs-per-acked-op must stay strictly below 1, which is exactly the
// property that distinguishes group commit from per-request durability.
TEST(WalBatchCost, ConcurrentHandlesSyncSublinearly) {
  std::string dir = FreshDir("groupcommit_e2e");
  SspServer server;
  WalOptions wal_opts;
  wal_opts.sync = WalSyncPolicy::kAlways;
  wal_opts.group_commit_us = 3000;
  auto wal = Wal::Open(dir, wal_opts, &server.store());
  ASSERT_TRUE(wal.ok()) << wal.status();
  server.set_wal(wal->get());

  constexpr int kWriters = 8;
  auto& reg = obs::MetricsRegistry::Global();
  uint64_t fsyncs0 = reg.counter("ssp.wal.fsyncs")->Value();
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Response resp = server.Handle(
          Request::PutData(900 + w, 0, {static_cast<uint8_t>(w)}));
      EXPECT_EQ(resp.status, RespStatus::kOk);
    });
  }
  for (std::thread& t : writers) t.join();
  uint64_t delta = reg.counter("ssp.wal.fsyncs")->Value() - fsyncs0;
  EXPECT_GE(delta, 1u);
  EXPECT_LT(delta, static_cast<uint64_t>(kWriters))
      << "fsyncs-per-acked-op reached 1.0: group commit is not sharing "
      << "syncs across concurrent requests";
  server.set_wal(nullptr);
}

// Satellite of the group-commit change: concurrent writers + SIGKILL at
// seeded points inside the commit window. Each of the N writers streams
// 3-sub-op batches into a disjoint (inode, block) keyspace; after the
// kill, the recovered store must hold every acked batch in full, and the
// one in-flight batch per writer may survive only as a *prefix* — a
// later sub-op present while an earlier one is missing would mean the
// WAL replayed a torn batch suffix.
TEST(WalRecovery, GroupCommitConcurrentWritersSurviveSigkill) {
  WalOptions wal_opts;
  wal_opts.sync = WalSyncPolicy::kAlways;
  wal_opts.group_commit_us = 1000;
  RestartableDaemon::Options opts;
  opts.wal_dir = FreshDir("groupcommit_kill");
  opts.wal = wal_opts;
  RestartableDaemon daemon(opts);

  constexpr int kWriters = 8;
  constexpr uint32_t kSubOps = 3;
  auto payload_for = [](int round, int w, uint64_t i, uint32_t k) {
    Bytes p(48);
    for (size_t b = 0; b < p.size(); ++b) {
      p[b] = static_cast<uint8_t>(
          (round * 7 + w * 131 + i * 29 + k * 17 + b) & 0xFF);
    }
    return p;
  };
  auto inode_for = [](int round, int w) {
    return static_cast<fs::InodeNum>(50000 + round * 100 + w);
  };

  auto& reg = obs::MetricsRegistry::Global();
  uint64_t piggybacks0 = reg.counter("ssp.wal.commit_piggybacks")->Value();
  Rng rng(0xD15C);
  const int rounds = CrashRounds(5);
  for (int round = 0; round < rounds; ++round) {
    daemon.Start();
    struct WriterOutcome {
      uint64_t acked_batches = 0;
      bool had_in_flight = false;
    };
    std::vector<WriterOutcome> outcomes(kWriters);
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        auto channel = TcpSspChannel::Connect("127.0.0.1", daemon.port());
        if (!channel.ok()) return;  // Kill landed before the connect.
        fs::InodeNum inode = inode_for(round, w);
        for (uint64_t i = 0;; ++i) {
          std::vector<Request> subs;
          for (uint32_t k = 0; k < kSubOps; ++k) {
            subs.push_back(Request::PutData(
                inode, static_cast<uint32_t>(i) * kSubOps + k,
                payload_for(round, w, i, k)));
          }
          auto resp = (*channel)->Call(Request::Batch(std::move(subs)));
          if (resp.ok() && resp->ok()) {
            ++outcomes[w].acked_batches;
            continue;
          }
          outcomes[w].had_in_flight = true;
          break;
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.NextInRange(2000, 25000)));
    daemon.KillHard();
    for (std::thread& t : writers) t.join();

    daemon.Start();
    SspServer* server = daemon.server();
    for (int w = 0; w < kWriters; ++w) {
      fs::InodeNum inode = inode_for(round, w);
      // Every acked batch must be recovered in full.
      for (uint64_t i = 0; i < outcomes[w].acked_batches; ++i) {
        for (uint32_t k = 0; k < kSubOps; ++k) {
          Response got = server->Handle(Request::GetData(
              inode, static_cast<uint32_t>(i) * kSubOps + k));
          ASSERT_EQ(got.status, RespStatus::kOk)
              << "round " << round << " writer " << w << ": acked batch "
              << i << " sub-op " << k << " lost across SIGKILL";
          EXPECT_EQ(got.payload, payload_for(round, w, i, k));
        }
      }
      // The in-flight batch may survive only as a prefix of its sub-ops.
      uint64_t i = outcomes[w].acked_batches;
      bool prior_present = true;
      for (uint32_t k = 0; k < kSubOps; ++k) {
        Response got = server->Handle(Request::GetData(
            inode, static_cast<uint32_t>(i) * kSubOps + k));
        bool present = got.status == RespStatus::kOk;
        ASSERT_FALSE(present && !prior_present)
            << "round " << round << " writer " << w
            << ": torn batch suffix — sub-op " << k
            << " recovered without its predecessor";
        if (present) {
          EXPECT_EQ(got.payload, payload_for(round, w, i, k));
        }
        prior_present = present;
      }
    }
    daemon.KillHard();
  }
  // The writers really did meet inside the commit window: at least one
  // request rode another leader's fsync somewhere across the rounds.
  EXPECT_GT(reg.counter("ssp.wal.commit_piggybacks")->Value(), piggybacks0)
      << "no request ever shared a group commit; the window is not engaging";
}

}  // namespace
}  // namespace sharoes::ssp
