// Concurrency tests for the TCP serving path: many real socket clients
// hammering mixed put/get/delete in parallel (no daemon-level serial
// lock anymore), daemon shutdown under load, and a start/stop churn
// regression for the Shutdown() connection-tracking race. Run under
// -DSHAROES_SANITIZE=thread to prove the path race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "ssp/tcp_service.h"
#include "testing/stress.h"
#include "util/random.h"

namespace sharoes::ssp {
namespace {

using testing::RunThreads;
using testing::StressThreads;

constexpr int kClients = 8;

Status StatusFromResponse(const Result<Response>& resp,
                          const std::string& what) {
  if (!resp.ok()) return resp.status();
  if (resp->status == RespStatus::kBadRequest) {
    return Status::Internal(what + ": server said bad request");
  }
  return Status::OK();
}

TEST(TcpConcurrencyTest, ParallelClientsMixedOps) {
  // 8 real TCP clients, each over its own socket, running a mixed
  // put/get/delete workload: disjoint keys verified exactly, plus a
  // shared hot key range that races by design.
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  constexpr int kOps = 120;

  StressThreads(kClients, [&](int t) -> Status {
    auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
    if (!channel.ok()) return channel.status();
    Rng rng(static_cast<uint64_t>(42 + t));
    for (int i = 0; i < kOps; ++i) {
      // Private key space: exact readback must hold.
      fs::InodeNum mine = static_cast<fs::InodeNum>(t) * 100000 + i;
      Bytes payload = {static_cast<uint8_t>(t), static_cast<uint8_t>(i)};
      auto put = (*channel)->Call(Request::PutMetadata(mine, 0, payload));
      SHAROES_RETURN_IF_ERROR(StatusFromResponse(put, "put"));
      auto get = (*channel)->Call(Request::GetMetadata(mine, 0));
      if (!get.ok()) return get.status();
      if (get->payload != payload) {
        return Status::Internal("readback mismatch on private key");
      }
      // Shared hot keys: contended traffic across all five verbs.
      fs::InodeNum hot = rng.NextU64() % 8;
      switch (rng.NextU64() % 5) {
        case 0: {
          auto r = (*channel)->Call(
              Request::PutData(hot, 0, {static_cast<uint8_t>(t)}));
          SHAROES_RETURN_IF_ERROR(StatusFromResponse(r, "hot put"));
          break;
        }
        case 1: {
          auto r = (*channel)->Call(Request::GetData(hot, 0));
          if (!r.ok()) return r.status();
          break;
        }
        case 2: {
          auto r = (*channel)->Call(Request::DeleteInodeData(hot));
          SHAROES_RETURN_IF_ERROR(StatusFromResponse(r, "hot delete"));
          break;
        }
        case 3: {
          auto r = (*channel)->Call(Request::PutSuperblock(
              static_cast<uint32_t>(hot), {static_cast<uint8_t>(i)}));
          SHAROES_RETURN_IF_ERROR(StatusFromResponse(r, "hot sb"));
          break;
        }
        case 4: {
          auto r = (*channel)->Call(Request::Batch(
              {Request::GetMetadata(hot, 0), Request::GetData(hot, 0)}));
          if (!r.ok()) return r.status();
          break;
        }
      }
    }
    return Status::OK();
  });

  // Every private write landed.
  for (int t = 0; t < kClients; ++t) {
    for (int i = 0; i < kOps; ++i) {
      EXPECT_TRUE(server.store()
                      .GetMetadata(static_cast<fs::InodeNum>(t) * 100000 + i, 0)
                      .has_value());
    }
  }
  (*daemon)->Shutdown();
}

TEST(TcpConcurrencyTest, RequestsExecuteInParallel) {
  // With the serve mutex gone, two clients must be able to have requests
  // in flight simultaneously. Drive enough concurrent large batches that
  // serialized execution would be glaringly slower; the real assertion is
  // that concurrent in-flight requests are handled (no deadlock, no
  // cross-talk between connection threads).
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  Rng rng(7);
  Bytes big = rng.NextBytes(1 << 18);
  StressThreads(kClients, [&](int t) -> Status {
    auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
    if (!channel.ok()) return channel.status();
    for (int i = 0; i < 20; ++i) {
      fs::InodeNum inode = static_cast<fs::InodeNum>(t) + 1;
      auto put = (*channel)->Call(Request::PutData(inode, 0, big));
      SHAROES_RETURN_IF_ERROR(StatusFromResponse(put, "big put"));
      auto get = (*channel)->Call(Request::GetData(inode, 0));
      if (!get.ok()) return get.status();
      if (get->payload != big) return Status::Internal("big readback torn");
    }
    return Status::OK();
  });
  (*daemon)->Shutdown();
}

TEST(TcpConcurrencyTest, ShutdownUnderLoad) {
  // Clients keep hammering while the daemon shuts down mid-traffic. The
  // daemon must unblock every connection thread and join cleanly; client
  // calls may fail with IO errors (connection reset) but must not hang
  // or crash.
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  std::atomic<int> ops_done{0};

  auto statuses = RunThreads(kClients + 1, [&](int t) -> Status {
    if (t == kClients) {
      // Shutdown thread: wait until traffic is flowing, then pull the rug.
      while (ops_done.load() < kClients) std::this_thread::yield();
      (*daemon)->Shutdown();
      return Status::OK();
    }
    auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
    if (!channel.ok()) return Status::OK();  // Lost the race to shutdown.
    for (int i = 0; i < 1000; ++i) {
      fs::InodeNum inode = static_cast<fs::InodeNum>(t) * 1000 + i;
      auto resp = (*channel)->Call(
          Request::PutMetadata(inode, 0, {static_cast<uint8_t>(t)}));
      ops_done.fetch_add(1);
      if (!resp.ok()) return Status::OK();  // Daemon went away: expected.
    }
    return Status::OK();
  });
  testing::ExpectAllOk(statuses);
  // After Shutdown returns, all connection threads have been joined; a
  // fresh connect attempt is refused.
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  EXPECT_FALSE(channel.ok());
}

TEST(TcpConcurrencyTest, StartStopChurn) {
  // Regression for the Shutdown()/AcceptLoop connection-tracking race:
  // start and stop the daemon 100x, sometimes with a client mid-flight,
  // so shutdown constantly races accept and connection teardown.
  SspServer server;
  for (int round = 0; round < 100; ++round) {
    auto daemon = TcpSspDaemon::Start(&server, 0);
    ASSERT_TRUE(daemon.ok()) << "round " << round << ": " << daemon.status();
    if (round % 2 == 0) {
      auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
      if (channel.ok()) {
        auto resp = (*channel)->Call(Request::PutMetadata(
            static_cast<fs::InodeNum>(round) + 1, 0, {1}));
        EXPECT_TRUE(resp.ok()) << "round " << round;
      }
    }
    (*daemon)->Shutdown();
  }
  // Daemon object destruction after explicit Shutdown is also clean
  // (covered implicitly every round by unique_ptr teardown).
}

TEST(TcpConcurrencyTest, ChurnWithConcurrentClients) {
  // Harder churn: each round, a pack of clients connects and issues a few
  // requests while the main thread shuts the daemon down underneath them.
  SspServer server;
  for (int round = 0; round < 20; ++round) {
    auto daemon = TcpSspDaemon::Start(&server, 0);
    ASSERT_TRUE(daemon.ok()) << daemon.status();
    uint16_t port = (*daemon)->port();
    auto statuses = RunThreads(5, [&](int t) -> Status {
      if (t == 4) {
        // Shuts the daemon down while the other four are connecting /
        // mid-request (the barrier released everyone together).
        (*daemon)->Shutdown();
        return Status::OK();
      }
      auto channel = TcpSspChannel::Connect("127.0.0.1", port);
      if (!channel.ok()) return Status::OK();
      for (int i = 0; i < 50; ++i) {
        auto resp = (*channel)->Call(Request::GetMetadata(
            static_cast<fs::InodeNum>(t) + 1, 0));
        if (!resp.ok()) return Status::OK();  // Shutdown hit us: fine.
      }
      return Status::OK();
    });
    testing::ExpectAllOk(statuses);
  }
}

}  // namespace
}  // namespace sharoes::ssp
