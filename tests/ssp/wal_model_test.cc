// Model-based durability property (pattern from core/model_based_test):
// random op sequences run against a WAL-backed server while an in-memory
// reference store applies the same ops directly; replaying the log
// directory (copied mid-run, exactly as a crash would freeze it) must
// reconstruct a store whose Serialize() bytes are identical to the
// reference — after every N ops, across compactions, and repeatably.
//
// The TSan variant drives concurrent writers (disjoint inode ranges, so
// cross-thread op order commutes) through the full serving path with a
// tiny compaction threshold and an interval syncer, covering the
// append/ack/compact/background locking against each other.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ssp/object_store.h"
#include "ssp/ssp_server.h"
#include "ssp/wal.h"
#include "testing/stress.h"
#include "util/random.h"

namespace sharoes::ssp {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "sharoes_walmodel_" + tag + "_" +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

/// Freezes the live WAL directory the way a crash would: a plain file
/// copy, no sync, no cooperation from the writer.
std::string SnapshotDirectory(const std::string& src, int generation) {
  std::string dst = src + "_frozen" + std::to_string(generation);
  std::string cmd = "rm -rf " + dst + " && cp -r " + src + " " + dst;
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  return dst;
}

/// One random mutating request. Inodes are confined to
/// [base_inode, base_inode + spread) so concurrent generators with
/// disjoint ranges never write the same key.
Request RandomOp(Rng* rng, fs::InodeNum base_inode, uint64_t spread) {
  fs::InodeNum inode = base_inode + rng->NextBelow(spread);
  uint32_t small = static_cast<uint32_t>(rng->NextBelow(4));
  Bytes payload = rng->NextBytes(1 + rng->NextBelow(96));
  switch (rng->NextBelow(12)) {
    case 0:
      return Request::PutSuperblock(static_cast<uint32_t>(inode), payload);
    case 1: {
      Request r;
      r.op = OpCode::kDeleteSuperblock;
      r.user = static_cast<uint32_t>(inode);
      return r;
    }
    case 2:
      return Request::PutMetadata(inode, small, payload);
    case 3:
      return Request::DeleteMetadata(inode, small);
    case 4:
      return Request::DeleteInodeMetadata(inode);
    case 5:
      return Request::PutUserMetadata(inode, static_cast<uint32_t>(inode),
                                      payload);
    case 6: {
      Request r;
      r.op = OpCode::kDeleteUserMetadata;
      r.inode = inode;
      r.user = static_cast<uint32_t>(inode);
      return r;
    }
    case 7:
      return Request::PutData(inode, small, payload);
    case 8:
      return Request::DeleteInodeData(inode);
    case 9:
      return Request::PutGroupKey(static_cast<uint32_t>(inode),
                                  static_cast<uint32_t>(small), payload);
    case 10: {
      Request r;
      r.op = OpCode::kDeleteGroupKey;
      r.group = static_cast<uint32_t>(inode);
      r.user = static_cast<uint32_t>(small);
      return r;
    }
    default:
      return Request::Batch({Request::PutMetadata(inode, 5, payload),
                             Request::PutData(inode, 5, payload)});
  }
}

void ApplyToReference(const Request& req, ObjectStore* reference) {
  if (req.op == OpCode::kBatch) {
    for (const Request& sub : req.batch) {
      ASSERT_TRUE(ApplyWalOp(sub, reference).ok());
    }
  } else {
    ASSERT_TRUE(ApplyWalOp(req, reference).ok());
  }
}

/// Recovers a frozen directory copy into a fresh store and returns its
/// canonical bytes.
Bytes RecoverFrozen(const std::string& frozen_dir) {
  ObjectStore store;
  auto wal = Wal::Open(frozen_dir, WalOptions{}, &store);
  EXPECT_TRUE(wal.ok()) << wal.status();
  return store.Serialize();
}

class WalModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalModelTest, ReplayAfterEveryNOpsMatchesReference) {
  const uint64_t seed = GetParam();
  std::string dir = FreshDir("seq" + std::to_string(seed));
  SspServer server;
  auto wal = Wal::Open(dir, WalOptions{}, &server.store());
  ASSERT_TRUE(wal.ok()) << wal.status();
  server.set_wal(wal->get());

  ObjectStore reference;
  Rng rng(seed);
  constexpr int kOps = 400;
  constexpr int kReplayEvery = 40;
  int generation = 0;
  for (int i = 1; i <= kOps; ++i) {
    Request op = RandomOp(&rng, /*base_inode=*/1, /*spread=*/23);
    Response resp = server.Handle(op);
    ASSERT_EQ(resp.status, RespStatus::kOk) << "op " << i;
    ApplyToReference(op, &reference);

    // Occasional explicit compaction: later replays start from a
    // snapshot and must still land on the same bytes.
    if (rng.NextBelow(100) < 4) {
      ASSERT_TRUE((*wal)->Compact().ok());
    }
    if (i % kReplayEvery == 0 || i == kOps) {
      std::string frozen = SnapshotDirectory(dir, generation++);
      Bytes recovered = RecoverFrozen(frozen);
      ASSERT_EQ(recovered, reference.Serialize())
          << "seed " << seed << ", divergence after op " << i;
      // Recovery is repeatable: a second replay of the same frozen
      // bytes is byte-identical (no hidden state, no ordering luck).
      ASSERT_EQ(RecoverFrozen(frozen), recovered);
    }
  }
  EXPECT_GT((*wal)->last_sequence(), static_cast<uint64_t>(kOps) - 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalModelTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(WalModelConcurrency, ConcurrentWritersRecoverToLiveState) {
  // Threads write disjoint inode ranges, so whatever order their ops
  // interleave in the log, replay commutes to the same final state the
  // live store reached. A tiny compaction threshold plus the interval
  // syncer keeps Compact(), Sync(), and Append() contending for the
  // whole run — the locking this test exists to put under TSan.
  std::string dir = FreshDir("conc");
  SspServer server;
  WalOptions opts;
  opts.sync = WalSyncPolicy::kInterval;
  opts.interval_ms = 1;
  opts.compact_threshold_bytes = 8192;
  auto wal = Wal::Open(dir, opts, &server.store());
  ASSERT_TRUE(wal.ok()) << wal.status();
  server.set_wal(wal->get());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 150;
  sharoes::testing::StressThreads(kThreads, [&](int t) -> Status {
    Rng rng(0xFEED + static_cast<uint64_t>(t));
    fs::InodeNum base = 1 + static_cast<fs::InodeNum>(t) * 1000;
    for (int i = 0; i < kOpsPerThread; ++i) {
      Request op = RandomOp(&rng, base, /*spread=*/17);
      Response resp = server.Handle(op);
      if (resp.status != RespStatus::kOk) {
        return Status::Internal("op rejected on thread " +
                                std::to_string(t));
      }
    }
    return Status::OK();
  });

  EXPECT_GE((*wal)->last_sequence(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  Bytes live = server.store().Serialize();
  // Quiesce before freezing: a real crash captures an atomic point in
  // time, but `cp -r` does not — copying *during* a background
  // compaction could pair an old snapshot with already-pruned segments,
  // a state no crash can produce. Tearing down the Wal joins the
  // background thread and finalizes the log.
  server.set_wal(nullptr);
  wal->reset();
  std::string frozen = SnapshotDirectory(dir, 0);
  EXPECT_EQ(RecoverFrozen(frozen), live);

  // Same property through recovery + a final explicit compaction: the
  // snapshot image plus an (empty) log tail reproduces identical bytes.
  ObjectStore reopened;
  auto wal2 = Wal::Open(dir, opts, &reopened);
  ASSERT_TRUE(wal2.ok()) << wal2.status();
  EXPECT_EQ(reopened.Serialize(), live);
  ASSERT_TRUE((*wal2)->Compact().ok());
  (*wal2).reset();
  EXPECT_EQ(RecoverFrozen(SnapshotDirectory(dir, 1)), live);
}

TEST(WalModelConcurrency, CompactRacesAppendsWithoutTearingTheCut) {
  // Hammer Compact() explicitly from a dedicated thread while writers
  // stream — the exclusive/shared gate handoff is the part a data race
  // would corrupt, and the per-round recovery equality would expose it.
  std::string dir = FreshDir("cutrace");
  SspServer server;
  WalOptions opts;
  opts.sync = WalSyncPolicy::kOff;
  opts.compact_threshold_bytes = 0;  // Only explicit compactions.
  auto wal = Wal::Open(dir, opts, &server.store());
  ASSERT_TRUE(wal.ok()) << wal.status();
  server.set_wal(wal->get());

  std::atomic<bool> done{false};
  constexpr int kWriters = 3;
  sharoes::testing::StressThreads(kWriters + 1, [&](int t) -> Status {
    if (t == kWriters) {  // The compactor.
      int compactions = 0;
      while (!done.load(std::memory_order_acquire)) {
        Status s = (*wal)->Compact();
        if (!s.ok()) return s;
        ++compactions;
      }
      return compactions > 0 ? Status::OK()
                             : Status::Internal("compactor starved");
    }
    Rng rng(0xABCD + static_cast<uint64_t>(t));
    fs::InodeNum base = 1 + static_cast<fs::InodeNum>(t) * 1000;
    for (int i = 0; i < 120; ++i) {
      Request op = RandomOp(&rng, base, /*spread=*/11);
      Response resp = server.Handle(op);
      if (resp.status != RespStatus::kOk) {
        return Status::Internal("op rejected");
      }
    }
    if (t == 0) done.store(true, std::memory_order_release);
    return Status::OK();
  });
  done.store(true);

  EXPECT_GT((*wal)->compactions(), 0u);
  Bytes live = server.store().Serialize();
  EXPECT_EQ(RecoverFrozen(SnapshotDirectory(dir, 0)), live);
}

}  // namespace
}  // namespace sharoes::ssp
