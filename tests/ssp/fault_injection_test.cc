// The SSP fault-injection layer itself: deterministic schedules, each
// fault kind observable from a real client, and a daemon that keeps
// serving healthy connections while mistreating the faulted one.

#include <gtest/gtest.h>

#include "ssp/fault_injection.h"
#include "ssp/tcp_service.h"
#include "testing/fault.h"

namespace sharoes::ssp {
namespace {

using testing::Fault;
using testing::ScriptedInjector;

std::vector<FaultAction::Kind> Schedule(uint64_t seed, int n) {
  FaultPolicy::Options opts;
  opts.seed = seed;
  opts.fail_prob = 0.2;
  opts.delay_prob = 0.1;
  opts.corrupt_prob = 0.1;
  opts.drop_prob = 0.1;
  FaultPolicy policy(opts);
  std::vector<FaultAction::Kind> kinds;
  for (int i = 0; i < n; ++i) {
    kinds.push_back(policy.OnRequest({}).kind);
  }
  return kinds;
}

TEST(FaultPolicyTest, SeedDeterministicSchedule) {
  auto a = Schedule(7, 500);
  auto b = Schedule(7, 500);
  auto c = Schedule(8, 500);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // Astronomically unlikely to collide over 500 draws.
}

TEST(FaultPolicyTest, CountsMatchSchedule) {
  FaultPolicy::Options opts;
  opts.seed = 3;
  opts.fail_prob = 0.5;
  FaultPolicy policy(opts);
  int failed = 0;
  for (int i = 0; i < 400; ++i) {
    if (policy.OnRequest({}).kind == FaultAction::Kind::kFailRequest) {
      ++failed;
    }
  }
  auto counts = policy.counts();
  EXPECT_EQ(counts.requests, 400u);
  EXPECT_EQ(counts.failed, static_cast<uint64_t>(failed));
  EXPECT_GT(counts.failed, 100u);  // ~200 expected.
  EXPECT_LT(counts.failed, 300u);
  EXPECT_EQ(counts.injected(), counts.failed);
}

TEST(FaultPolicyTest, ZeroProbabilityInjectsNothing) {
  FaultPolicy policy({});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.OnRequest({}).kind, FaultAction::Kind::kNone);
  }
  EXPECT_EQ(policy.counts().injected(), 0u);
}

TEST(FaultInjectionTcpTest, FailedRequestIsNotExecuted) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  ScriptedInjector injector({Fault(FaultAction::Kind::kFailRequest)});
  (*daemon)->set_fault_injector(&injector);
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(channel.ok());

  // First request hits the fault: kError reply, store untouched.
  auto resp = (*channel)->Call(Request::PutMetadata(1, 0, {9}));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->status, RespStatus::kError);
  EXPECT_FALSE(server.store().GetMetadata(1, 0).has_value());
  // Script exhausted: the connection is healthy and serves normally.
  resp = (*channel)->Call(Request::PutMetadata(1, 0, {9}));
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok());
  EXPECT_TRUE(server.store().GetMetadata(1, 0).has_value());
  (*daemon)->Shutdown();
}

TEST(FaultInjectionTcpTest, DroppedConnectionSeversMidFrame) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  ScriptedInjector injector({Fault(FaultAction::Kind::kDropConnection)});
  (*daemon)->set_fault_injector(&injector);
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(channel.ok());

  auto resp = (*channel)->Call(Request::GetMetadata(1, 0));
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsIoError()) << resp.status();
  // The daemon as a whole survives: fresh connections serve fine.
  auto fresh = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(fresh.ok());
  auto ok_resp = (*fresh)->Call(Request::GetMetadata(1, 0));
  ASSERT_TRUE(ok_resp.ok()) << ok_resp.status();
  EXPECT_EQ(ok_resp->status, RespStatus::kNotFound);
  (*daemon)->Shutdown();
}

TEST(FaultInjectionTcpTest, CorruptedPayloadStillParsesButDiffers) {
  SspServer server;
  server.store().PutData(5, 0, {10, 20, 30, 40});
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  FaultAction corrupt = Fault(FaultAction::Kind::kCorruptResponse);
  corrupt.corrupt_mask = 0xFF;
  ScriptedInjector injector({corrupt});
  (*daemon)->set_fault_injector(&injector);
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(channel.ok());

  // The transport accepts the tampered reply (framing intact, payload
  // wrong) — exactly the case only the integrity layer can catch, which
  // tests/core/client_fault_test.cc asserts end to end.
  auto resp = (*channel)->Call(Request::GetData(5, 0));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->ok());
  EXPECT_NE(resp->payload, (Bytes{10, 20, 30, 40}));
  EXPECT_EQ(resp->payload.size(), 4u);
  (*daemon)->Shutdown();
}

TEST(FaultInjectionTcpTest, DelayInjectsLatencyOnly) {
  SspServer server;
  server.store().PutData(5, 0, {1});
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  FaultAction delay = Fault(FaultAction::Kind::kDelayResponse);
  delay.delay_ms = 30;
  ScriptedInjector injector({delay});
  (*daemon)->set_fault_injector(&injector);
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(channel.ok());
  auto resp = (*channel)->Call(Request::GetData(5, 0));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->payload, Bytes{1});  // Slow, not wrong.
  (*daemon)->Shutdown();
}

TEST(FaultInjectionTcpTest, DelayBeyondRecvDeadlineSurfacesAsDeadline) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  FaultAction delay = Fault(FaultAction::Kind::kDelayResponse);
  delay.delay_ms = 500;
  ScriptedInjector injector({delay});
  (*daemon)->set_fault_injector(&injector);
  net::TcpTimeouts timeouts;
  timeouts.recv_ms = 50;
  auto channel =
      TcpSspChannel::Connect("127.0.0.1", (*daemon)->port(), timeouts);
  ASSERT_TRUE(channel.ok());
  auto resp = (*channel)->Call(Request::GetMetadata(1, 0));
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsDeadlineExceeded()) << resp.status();
  (*daemon)->Shutdown();
}

TEST(FaultInjectionTcpTest, FaultedConnectionDoesNotPoisonOthers) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  // Alternate drop / serve so the victim and the healthy client
  // interleave against the same injector.
  std::vector<FaultAction> script;
  for (int i = 0; i < 4; ++i) {
    script.push_back(Fault(FaultAction::Kind::kDropConnection));
    script.push_back({});
  }
  ScriptedInjector injector(std::move(script));
  (*daemon)->set_fault_injector(&injector);

  for (int round = 0; round < 4; ++round) {
    auto victim = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
    ASSERT_TRUE(victim.ok());
    EXPECT_FALSE((*victim)->Call(Request::GetMetadata(1, 0)).ok());
    auto healthy = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
    ASSERT_TRUE(healthy.ok());
    auto resp = (*healthy)->Call(
        Request::PutMetadata(100 + round, 0, {static_cast<uint8_t>(round)}));
    ASSERT_TRUE(resp.ok()) << resp.status();
    EXPECT_TRUE(resp->ok());
  }
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(server.store().GetMetadata(100 + round, 0).has_value());
  }
  (*daemon)->Shutdown();
}

TEST(FaultInjectionServerTest, InProcessHookFailsAndCorrupts) {
  // The SspServer-level hook: same injector interface, no sockets.
  SspServer server;
  server.store().PutData(7, 0, {1, 2, 3, 4, 5, 6});
  FaultAction corrupt = Fault(FaultAction::Kind::kCorruptResponse);
  corrupt.corrupt_mask = 0x80;
  ScriptedInjector injector(
      {Fault(FaultAction::Kind::kFailRequest),
       // In-process, a "dropped connection" degrades to a failed request.
       Fault(FaultAction::Kind::kDropConnection), corrupt});
  server.set_fault_injector(&injector);

  auto wire = [&](const Request& req) {
    auto resp = Response::Deserialize(server.HandleWire(req.Serialize()));
    EXPECT_TRUE(resp.ok());
    return *resp;
  };
  EXPECT_EQ(wire(Request::GetData(7, 0)).status, RespStatus::kError);
  EXPECT_EQ(wire(Request::GetData(7, 0)).status, RespStatus::kError);
  Response tampered = wire(Request::GetData(7, 0));
  EXPECT_TRUE(tampered.ok());
  EXPECT_NE(tampered.payload, (Bytes{1, 2, 3, 4, 5, 6}));
  // Script exhausted → untouched.
  EXPECT_EQ(wire(Request::GetData(7, 0)).payload, (Bytes{1, 2, 3, 4, 5, 6}));
  server.set_fault_injector(nullptr);
}

TEST(CorruptResponsePayloadTest, FindsFirstPayloadInBatch) {
  // A batch response whose first sub-response has an empty payload: the
  // walker must descend past empty headers and hit real payload bytes.
  Response resp;
  resp.status = RespStatus::kOk;
  resp.batch.push_back(Response::Ok());
  resp.batch.push_back(Response::Ok({0xAA, 0xBB, 0xCC}));
  Bytes wire = resp.Serialize();
  Bytes original = wire;
  ASSERT_TRUE(CorruptResponsePayload(&wire, 0x01));
  EXPECT_NE(wire, original);
  auto reparsed = Response::Deserialize(wire);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();  // Framing intact.
  EXPECT_NE(reparsed->batch[1].payload, (Bytes{0xAA, 0xBB, 0xCC}));
  EXPECT_EQ(reparsed->batch[0].payload, Bytes{});
}

TEST(CorruptResponsePayloadTest, AllEmptyPayloadsLeftUntouched) {
  Response resp = Response::Ok();
  Bytes wire = resp.Serialize();
  Bytes original = wire;
  EXPECT_FALSE(CorruptResponsePayload(&wire, 0xFF));
  EXPECT_EQ(wire, original);
}

}  // namespace
}  // namespace sharoes::ssp
