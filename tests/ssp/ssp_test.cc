// Tests for the SSP: protocol messages, object store, server dispatch,
// connection cost accounting.

#include <gtest/gtest.h>

#include "net/network_model.h"
#include <cstdio>
#include <fstream>

#include "ssp/ssp_server.h"

namespace sharoes::ssp {
namespace {

TEST(MessageTest, RequestRoundTripAllShapes) {
  std::vector<Request> requests = {
      Request::GetSuperblock(7),
      Request::PutSuperblock(7, {1, 2, 3}),
      Request::GetMetadata(42, 3),
      Request::PutMetadata(42, 3, {9, 9}),
      Request::DeleteMetadata(42, 3),
      Request::DeleteInodeMetadata(42),
      Request::GetUserMetadata(42, 7),
      Request::PutUserMetadata(42, 7, {5}),
      Request::GetData(42, 1),
      Request::PutData(42, 1, {0xAB}),
      Request::DeleteInodeData(42),
      Request::GetGroupKey(10, 7),
      Request::PutGroupKey(10, 7, {1}),
      Request::DeleteGroupKey(10, 7),
  };
  for (const Request& req : requests) {
    auto back = Request::Deserialize(req.Serialize());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->op, req.op);
    EXPECT_EQ(back->inode, req.inode);
    EXPECT_EQ(back->selector, req.selector);
    EXPECT_EQ(back->user, req.user);
    EXPECT_EQ(back->group, req.group);
    EXPECT_EQ(back->block, req.block);
    EXPECT_EQ(back->payload, req.payload);
  }
}

TEST(MessageTest, BatchRoundTrip) {
  Request batch = Request::Batch(
      {Request::GetMetadata(1, 0), Request::PutData(2, 0, {7})});
  auto back = Request::Deserialize(batch.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->op, OpCode::kBatch);
  ASSERT_EQ(back->batch.size(), 2u);
  EXPECT_EQ(back->batch[0].op, OpCode::kGetMetadata);
  EXPECT_EQ(back->batch[1].payload, Bytes{7});
}

TEST(MessageTest, NestedBatchRejected) {
  Request inner = Request::Batch({Request::GetMetadata(1, 0)});
  Request outer = Request::Batch({inner});
  EXPECT_FALSE(Request::Deserialize(outer.Serialize()).ok());
}

TEST(MessageTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Request::Deserialize(ToBytes("garbage")).ok());
  EXPECT_FALSE(Response::Deserialize(ToBytes("zz")).ok());
  Bytes bad_op = Request::GetMetadata(1, 0).Serialize();
  bad_op[0] = 0xEE;
  EXPECT_FALSE(Request::Deserialize(bad_op).ok());
}

TEST(MessageTest, ResponseRoundTrip) {
  Response ok = Response::Ok({1, 2});
  auto back = Response::Deserialize(ok.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->ok());
  EXPECT_EQ(back->payload, (Bytes{1, 2}));
  Response nf = Response::NotFound();
  back = Response::Deserialize(nf.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status, RespStatus::kNotFound);
}

TEST(ObjectStoreTest, MetadataCrud) {
  ObjectStore store;
  EXPECT_FALSE(store.GetMetadata(1, 0).has_value());
  store.PutMetadata(1, 0, {1});
  store.PutMetadata(1, 1, {2});
  store.PutMetadata(2, 0, {3});
  EXPECT_EQ(store.GetMetadata(1, 1), std::optional<Bytes>(Bytes{2}));
  EXPECT_EQ(store.MetadataReplicaCount(1), 2u);
  store.DeleteMetadata(1, 0);
  EXPECT_EQ(store.MetadataReplicaCount(1), 1u);
  store.DeleteInodeMetadata(1);
  EXPECT_EQ(store.MetadataReplicaCount(1), 0u);
  EXPECT_TRUE(store.GetMetadata(2, 0).has_value());  // Untouched.
}

TEST(ObjectStoreTest, DataCrudAndStats) {
  ObjectStore store;
  store.PutData(5, 0, Bytes(100, 1));
  store.PutData(5, 1, Bytes(50, 2));
  store.PutSuperblock(1, Bytes(10, 3));
  StorageStats stats = store.Stats();
  EXPECT_EQ(stats.data_bytes, 150u);
  EXPECT_EQ(stats.superblock_bytes, 10u);
  EXPECT_EQ(stats.object_count, 3u);
  EXPECT_EQ(stats.total_bytes(), 160u);
  store.DeleteInodeData(5);
  EXPECT_FALSE(store.GetData(5, 0).has_value());
}

TEST(ObjectStoreTest, CorruptionInjection) {
  ObjectStore store;
  store.PutMetadata(1, 0, Bytes(16, 0xAA));
  EXPECT_TRUE(store.CorruptMetadata(1, 0, 3, 0x01));
  EXPECT_EQ((*store.GetMetadata(1, 0))[3], 0xAB);
  EXPECT_FALSE(store.CorruptMetadata(9, 0, 0));
  store.PutData(1, 0, Bytes(8, 0));
  EXPECT_TRUE(store.CorruptData(1, 0, 100));  // Offset wraps modulo size.
  EXPECT_TRUE(store.ReplaceData(1, 0, Bytes{1, 2, 3}));
  EXPECT_EQ(store.GetData(1, 0), std::optional<Bytes>(Bytes{1, 2, 3}));
}

TEST(SspServerTest, GetPutDeleteThroughWire) {
  SspServer server;
  Bytes resp_wire =
      server.HandleWire(Request::PutMetadata(1, 0, {42}).Serialize());
  auto resp = Response::Deserialize(resp_wire);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok());
  resp = Response::Deserialize(
      server.HandleWire(Request::GetMetadata(1, 0).Serialize()));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->payload, Bytes{42});
  resp = Response::Deserialize(
      server.HandleWire(Request::GetMetadata(1, 9).Serialize()));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, RespStatus::kNotFound);
}

TEST(SspServerTest, MalformedWireGetsBadRequest) {
  SspServer server;
  auto resp = Response::Deserialize(server.HandleWire(ToBytes("junk")));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, RespStatus::kBadRequest);
}

TEST(SspServerTest, BatchExecution) {
  SspServer server;
  Response resp = server.Handle(Request::Batch({
      Request::PutMetadata(1, 0, {1}),
      Request::GetMetadata(1, 0),
      Request::GetMetadata(2, 0),
  }));
  ASSERT_EQ(resp.batch.size(), 3u);
  EXPECT_TRUE(resp.batch[0].ok());
  EXPECT_EQ(resp.batch[1].payload, Bytes{1});
  EXPECT_EQ(resp.batch[2].status, RespStatus::kNotFound);
}

TEST(SspServerTest, BatchRejectsNonBatchableSubOps) {
  // Only store-level gets/puts/deletes may ride inside a batch. An admin
  // op like kGetStats smuggled in as a sub-op is answered kBadRequest per
  // slot — and the rest of the batch still executes.
  SspServer server;
  Response resp = server.Handle(Request::Batch({
      Request::GetStats(),
      Request::PutMetadata(1, 0, {1}),
      Request::GetMetadata(1, 0),
  }));
  ASSERT_EQ(resp.status, RespStatus::kOk);
  ASSERT_EQ(resp.batch.size(), 3u);
  EXPECT_EQ(resp.batch[0].status, RespStatus::kBadRequest);
  EXPECT_TRUE(resp.batch[1].ok());
  EXPECT_EQ(resp.batch[2].payload, Bytes{1});
  // The opcode predicate itself: admin + nesting excluded, reads and
  // mutations allowed.
  EXPECT_FALSE(IsBatchableOp(OpCode::kGetStats));
  EXPECT_FALSE(IsBatchableOp(OpCode::kBatch));
  EXPECT_TRUE(IsBatchableOp(OpCode::kGetData));
  EXPECT_TRUE(IsBatchableOp(OpCode::kPutMetadata));
}

TEST(SspServerTest, GroupKeyOps) {
  SspServer server;
  server.Handle(Request::PutGroupKey(10, 1, {9}));
  EXPECT_TRUE(server.Handle(Request::GetGroupKey(10, 1)).ok());
  server.Handle(Request::DeleteGroupKey(10, 1));
  EXPECT_EQ(server.Handle(Request::GetGroupKey(10, 1)).status,
            RespStatus::kNotFound);
}

TEST(SspConnectionTest, ChargesRoundTripsAndCountsBytes) {
  SimClock clock;
  net::Transport transport(&clock, net::NetworkModel::PaperDsl());
  SspServer server;
  SspConnection conn(&server, &transport);
  auto resp = conn.Call(Request::PutMetadata(1, 0, Bytes(1000, 1)));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(transport.counters().round_trips, 1u);
  EXPECT_GT(transport.counters().bytes_up, 1000u);
  // 2 x 45 ms latency + 8 ms overhead + ~1 KB at 850 kbit/s (~9.8 ms).
  double ms = clock.snapshot().total_ms();
  EXPECT_GT(ms, 105);
  EXPECT_LT(ms, 115);
  EXPECT_EQ(clock.snapshot().network_ns(), clock.snapshot().total_ns);
}

TEST(NetworkModelTest, RoundTripMath) {
  net::NetworkModel m;
  m.latency_ms = 10;
  m.uplink_bps = 8000;    // 1 byte per ms.
  m.downlink_bps = 4000;  // 0.5 bytes per ms.
  m.per_request_ms = 1;
  EXPECT_DOUBLE_EQ(m.RoundTripMs(100, 50), 20 + 1 + 100 + 100);
  net::NetworkModel zero = net::NetworkModel::Zero();
  EXPECT_DOUBLE_EQ(zero.RoundTripMs(1 << 20, 1 << 20), 0);
}

}  // namespace
}  // namespace sharoes::ssp

namespace sharoes::ssp {
namespace {

TEST(ObjectStorePersistenceTest, SnapshotRoundTrip) {
  ObjectStore store;
  store.PutSuperblock(1, {1, 2, 3});
  store.PutMetadata(10, 0, {4, 5});
  store.PutMetadata(10, 2, {6});
  store.PutUserMetadata(10, 7, {7, 7});
  store.PutData(10, 0, Bytes(100, 9));
  store.PutGroupKey(500, 1, {8});
  Bytes snap = store.Serialize();
  auto back = ObjectStore::Deserialize(snap);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->GetSuperblock(1), std::optional<Bytes>(Bytes{1, 2, 3}));
  EXPECT_EQ(back->GetMetadata(10, 2), std::optional<Bytes>(Bytes{6}));
  EXPECT_EQ(back->GetUserMetadata(10, 7), std::optional<Bytes>(Bytes{7, 7}));
  EXPECT_EQ(back->GetData(10, 0), std::optional<Bytes>(Bytes(100, 9)));
  EXPECT_EQ(back->GetGroupKey(500, 1), std::optional<Bytes>(Bytes{8}));
  EXPECT_EQ(back->Stats().object_count, store.Stats().object_count);
}

TEST(ObjectStorePersistenceTest, FileRoundTripAndErrors) {
  ObjectStore store;
  store.PutMetadata(3, 0, {42});
  std::string path = ::testing::TempDir() + "/sharoes_store_test.db";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto back = ObjectStore::LoadFromFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->GetMetadata(3, 0), std::optional<Bytes>(Bytes{42}));
  EXPECT_TRUE(ObjectStore::LoadFromFile("/no/such/file").status()
                  .IsNotFound());
  // Garbage files are rejected, not crashed on.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a snapshot";
  }
  EXPECT_FALSE(ObjectStore::LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(ObjectStorePersistenceTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ObjectStore::Deserialize(ToBytes("junk")).ok());
  EXPECT_FALSE(ObjectStore::Deserialize(Bytes{}).ok());
  ObjectStore store;
  store.PutData(1, 0, {1});
  Bytes snap = store.Serialize();
  snap.pop_back();  // Truncate.
  EXPECT_FALSE(ObjectStore::Deserialize(snap).ok());
}

}  // namespace
}  // namespace sharoes::ssp
