// Wire compatibility of the trace extension and the kGetStats admin RPC.
//
// The extension must be invisible when unused (byte-identical to the
// pre-extension encoding — a non-tracing client is indistinguishable
// from a legacy one), skippable when unknown (an old server ignores a
// new client's future extension tags), and strict about garbage (the
// protocol's trailing-bytes rejection survives).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/retrying_connection.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "ssp/fault_injection.h"
#include "ssp/message.h"
#include "ssp/ssp_server.h"
#include "ssp/tcp_service.h"
#include "util/binary_io.h"

namespace sharoes::ssp {
namespace {

/// The pre-extension (legacy) encoding of a request, built by hand from
/// the documented wire layout. If this ever disagrees with Serialize()
/// for untraced requests, old servers will reject new clients.
Bytes LegacyEncode(const Request& req) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(req.op));
  w.PutU64(req.inode);
  w.PutU64(req.selector);
  w.PutU32(req.user);
  w.PutU32(req.group);
  w.PutU32(req.block);
  w.PutBytes(req.payload);
  w.PutU32(static_cast<uint32_t>(req.batch.size()));
  return w.Take();
}

TEST(TraceWireTest, UntracedRequestIsByteIdenticalToLegacyEncoding) {
  Request req = Request::PutData(42, 3, ToBytes("block-bytes"));
  ASSERT_EQ(req.trace_id, 0u);
  EXPECT_EQ(req.Serialize(), LegacyEncode(req));
}

TEST(TraceWireTest, TraceRoundTripsThroughTheWire) {
  Request req = Request::GetData(7, 1);
  Bytes wire = req.SerializeWithTrace(0xDEADBEEFCAFEF00Dull, 3);
  auto parsed = Request::Deserialize(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->op, OpCode::kGetData);
  EXPECT_EQ(parsed->inode, 7u);
  EXPECT_EQ(parsed->trace_id, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(parsed->attempt, 3u);
  // Re-serializing a parsed traced request reproduces the frame.
  EXPECT_EQ(parsed->Serialize(), wire);
}

TEST(TraceWireTest, ZeroTraceSerializesWithoutExtension) {
  Request req = Request::GetData(7, 1);
  EXPECT_EQ(req.SerializeWithTrace(0, 5), LegacyEncode(req));
}

TEST(TraceWireTest, UnknownExtensionTagIsSkipped) {
  // A future client appends an extension tag this server has never heard
  // of; the frame must still parse (and any known entries still apply).
  Request req = Request::GetMetadata(9, 2);
  BinaryWriter w;
  w.PutRaw(LegacyEncode(req).data(), LegacyEncode(req).size());
  w.PutU32(kRequestExtensionMagic);
  w.PutU8(2);                   // Two entries.
  w.PutU8(0x7E);                // Unknown tag...
  w.PutU8(3);                   // ...3-byte payload.
  w.PutU8(1); w.PutU8(2); w.PutU8(3);
  w.PutU8(kExtensionTagTrace);  // Known trace entry after it.
  w.PutU8(9);
  w.PutU64(0x1234);
  w.PutU8(1);
  auto parsed = Request::Deserialize(w.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->trace_id, 0x1234u);
  EXPECT_EQ(parsed->attempt, 1u);
}

TEST(TraceWireTest, KnownTagWithUnexpectedLengthIsSkipped) {
  // A longer (future) trace entry: skipped wholesale, not misparsed.
  Request req = Request::GetMetadata(9, 2);
  BinaryWriter w;
  w.PutRaw(LegacyEncode(req).data(), LegacyEncode(req).size());
  w.PutU32(kRequestExtensionMagic);
  w.PutU8(1);
  w.PutU8(kExtensionTagTrace);
  w.PutU8(11);  // Not the 9 bytes this version knows.
  for (int i = 0; i < 11; ++i) w.PutU8(0xAA);
  auto parsed = Request::Deserialize(w.Take());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->trace_id, 0u);  // Entry ignored.
}

TEST(TraceWireTest, TrailingGarbageIsStillRejected) {
  Request req = Request::GetData(7, 1);
  Bytes wire = req.Serialize();
  wire.push_back(0xEE);  // Not a valid extension block.
  EXPECT_FALSE(Request::Deserialize(wire).ok());
}

TEST(TraceWireTest, TruncatedExtensionIsRejected) {
  Request req = Request::GetData(7, 1);
  Bytes wire = req.SerializeWithTrace(0x99, 0);
  wire.pop_back();  // Cut the extension mid-entry.
  EXPECT_FALSE(Request::Deserialize(wire).ok());
}

TEST(TraceWireTest, BatchSubRequestsCarryNoExtension) {
  Request batch = Request::Batch(
      {Request::GetData(1, 0), Request::PutData(2, 0, ToBytes("x"))});
  Bytes wire = batch.SerializeWithTrace(0x77, 0);
  auto parsed = Request::Deserialize(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->trace_id, 0x77u);
  ASSERT_EQ(parsed->batch.size(), 2u);
  for (const Request& sub : parsed->batch) {
    EXPECT_EQ(sub.trace_id, 0u);  // Top-level frame context covers them.
  }
}

TEST(TraceWireTest, ServerExecutesTracedRequestsNormally) {
  // A trace-stamped put/get pair behaves exactly like untraced ones.
  SspServer server;
  Request put = Request::PutData(5, 0, ToBytes("payload"));
  Bytes put_wire = put.SerializeWithTrace(obs::NextTraceId(), 0);
  auto put_resp = Response::Deserialize(server.HandleWire(put_wire));
  ASSERT_TRUE(put_resp.ok());
  EXPECT_TRUE(put_resp->ok());
  Bytes get_wire =
      Request::GetData(5, 0).SerializeWithTrace(obs::NextTraceId(), 2);
  auto get_resp = Response::Deserialize(server.HandleWire(get_wire));
  ASSERT_TRUE(get_resp.ok());
  EXPECT_EQ(get_resp->payload, ToBytes("payload"));
}

TEST(GetStatsTest, ReturnsRegistrySnapshotJson) {
  SspServer server;
  // Serve something first so the snapshot has opcode counters.
  server.HandleWire(Request::PutData(1, 0, ToBytes("d")).Serialize());
  Response resp = server.Handle(Request::GetStats());
  ASSERT_TRUE(resp.ok());
  std::string json(resp.payload.begin(), resp.payload.end());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"ssp.requests.PutData\""), std::string::npos);
  EXPECT_NE(json.find("\"ssp.service_us.PutData\""), std::string::npos);
  EXPECT_NE(json.find("\"ssp.store.objects\""), std::string::npos);
}

TEST(GetStatsTest, DoesNotTouchTheStore) {
  SspServer server;
  server.HandleWire(Request::PutData(1, 0, ToBytes("d")).Serialize());
  auto before = server.store().Stats();
  (void)server.Handle(Request::GetStats());
  auto after = server.store().Stats();
  EXPECT_EQ(before.object_count, after.object_count);
  EXPECT_EQ(before.total_bytes(), after.total_bytes());
}

TEST(GetStatsTest, PrefixFilterRestrictsTheSnapshot) {
  // kGetStats carries an optional prefix in its payload: the returned
  // document is restricted to metrics whose name starts with it (the
  // cheap periodic-scrape path: `sharoes_cli stats --prefix ssp.wal`).
  SspServer server;
  server.HandleWire(Request::PutData(1, 0, ToBytes("d")).Serialize());
  Response resp = server.Handle(Request::GetStats("ssp.requests"));
  ASSERT_TRUE(resp.ok());
  std::string json(resp.payload.begin(), resp.payload.end());
  EXPECT_NE(json.find("\"ssp.requests.PutData\""), std::string::npos);
  EXPECT_EQ(json.find("\"ssp.store.objects\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"ssp.service_us.PutData\""), std::string::npos)
      << json;
  // An unmatched prefix still yields a valid (empty) document.
  Response none = server.Handle(Request::GetStats("no.such.prefix"));
  ASSERT_TRUE(none.ok());
  std::string empty_json(none.payload.begin(), none.payload.end());
  EXPECT_EQ(empty_json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(GetTracesTest, DoesNotTouchTheStore) {
  // kGetTraces joins kGetStats as an opcode operators fire at a live
  // production daemon, so it must be observably read-only too.
  SspServer server;
  server.HandleWire(Request::PutData(1, 0, ToBytes("d")).Serialize());
  auto before = server.store().Stats();
  Response resp = server.Handle(Request::GetTraces());
  ASSERT_TRUE(resp.ok());
  auto after = server.store().Stats();
  EXPECT_EQ(before.object_count, after.object_count);
  EXPECT_EQ(before.total_bytes(), after.total_bytes());
}

TEST(GetTracesTest, ReturnsTheSpanCollectorJson) {
  SspServer server;
  obs::SpanCollector::Global().Reset();
  uint64_t prev = obs::SlowRequestThresholdUs();
  obs::SetSlowRequestThresholdUs(1);
  obs::SpanRecord rec;
  rec.trace_id = 0x5151;
  rec.op = "GetData";
  rec.kind = 'S';
  rec.total_us = 1234;
  obs::SpanCollector::Global().Publish(rec);
  Response resp = server.Handle(Request::GetTraces());
  obs::SetSlowRequestThresholdUs(prev);
  obs::SpanCollector::Global().Reset();
  ASSERT_TRUE(resp.ok());
  std::string json(resp.payload.begin(), resp.payload.end());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"slow_threshold_us\":1"), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"GetData\""), std::string::npos);
  EXPECT_NE(json.find(obs::TraceIdHex(0x5151)), std::string::npos);
}

TEST(GetTracesTest, IsIdempotentButNotBatchable) {
  EXPECT_TRUE(IsIdempotentOp(OpCode::kGetTraces));  // Safe to retry...
  EXPECT_FALSE(IsMutatingOp(OpCode::kGetTraces));   // ...never WAL-logged...
  EXPECT_FALSE(IsBatchableOp(OpCode::kGetTraces));  // ...and no batch rides.
}

TEST(GetTracesTest, BatchRejectionLogJoinsTheEnvelopeTrace) {
  // Satellite of the trace-propagation contract: a kBatch sub-op
  // rejection must log under the *envelope's* trace id, so the server
  // log line joins the client op that sent the bad batch.
  SspServer server;
  std::vector<std::string> lines;
  obs::SetLogSinkForTest([&](const std::string& line) {
    lines.push_back(line);
  });
  uint64_t trace = obs::NextTraceId();
  Request batch = Request::Batch({Request::GetTraces()});
  auto resp = Response::Deserialize(
      server.HandleWire(batch.SerializeWithTrace(trace, 4)));
  obs::SetLogSinkForTest(nullptr);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->batch.size(), 1u);
  EXPECT_FALSE(resp->batch[0].ok());  // Admin ops never ride in batches.
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("ssp.batch_subop_rejected") != std::string::npos &&
        line.find(obs::TraceIdHex(trace)) != std::string::npos &&
        line.find("\"op\":\"GetTraces\"") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "rejection line missing the envelope trace id";
}

TEST(SlowRequestCaptureTest, LiveOverTcpEndToEnd) {
  // The full slow-path loop: a traced request served by a real TCP
  // daemon crosses a (floor-level) threshold, the transport-owned
  // ServerSpanFrame publishes its timeline, and a later kGetTraces on
  // the same connection drains it — phases attributed, trace id intact.
  obs::SpanCollector::Global().Reset();
  uint64_t prev = obs::SlowRequestThresholdUs();
  obs::SetSlowRequestThresholdUs(1);

  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();

  uint64_t trace = obs::NextTraceId();
  obs::SetCurrentTrace(obs::TraceContext{trace, 0});
  auto put = (*channel)->Call(Request::PutData(77, 0, ToBytes("payload")));
  obs::SetCurrentTrace(obs::TraceContext{});
  ASSERT_TRUE(put.ok()) << put.status().ToString();
  ASSERT_TRUE(put->ok());

  auto traces = (*channel)->Call(Request::GetTraces());
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  ASSERT_TRUE(traces->ok());
  std::string json(traces->payload.begin(), traces->payload.end());
  EXPECT_NE(json.find(obs::TraceIdHex(trace)), std::string::npos) << json;
  EXPECT_NE(json.find("\"op\":\"PutData\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"server\""), std::string::npos) << json;

  // The same record, decoded: attribution must add up (the acceptance
  // bound is 10%; the structural bound is µs truncation per phase).
  bool checked = false;
  for (const obs::SpanRecord& rec : obs::SpanCollector::Global().Snap().slow) {
    if (rec.trace_id != trace) continue;
    checked = true;
    EXPECT_EQ(rec.kind, 'S');
    EXPECT_LE(rec.PhaseSumUs(), rec.total_us + 1);
    EXPECT_GE(rec.PhaseSumUs() + obs::kNumPhases, rec.total_us);
  }
  EXPECT_TRUE(checked) << "server span for the traced put never captured";

  obs::SetSlowRequestThresholdUs(prev);
  obs::SpanCollector::Global().Reset();
  (*daemon)->Shutdown();
}

TEST(GetStatsTest, LiveOverTcpWithFaultCountersMoving) {
  // End-to-end: a faulted daemon is polled for stats mid-churn; the
  // snapshot must arrive well-formed and show nonzero fault counters.
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  FaultPolicy::Options fopts;
  fopts.seed = 42;
  fopts.fail_prob = 0.3;
  FaultPolicy faults(fopts);
  (*daemon)->set_fault_injector(&faults);

  uint64_t fail_before =
      obs::MetricsRegistry::Global().counter("ssp.fault.injected.fail")
          ->Value();

  core::RetryOptions ropts;
  ropts.max_attempts = 16;
  ropts.initial_backoff_ms = 1;
  ropts.max_backoff_ms = 5;
  ropts.seed = 7;
  uint16_t port = (*daemon)->port();
  auto factory = [port]() -> Result<std::unique_ptr<SspChannel>> {
    auto ch = TcpSspChannel::Connect("127.0.0.1", port);
    if (!ch.ok()) return ch.status();
    return std::unique_ptr<SspChannel>(std::move(*ch));
  };
  core::RetryingConnection conn(factory, ropts);
  // Churn until the injector has demonstrably fired.
  for (int i = 0; i < 40; ++i) {
    auto resp = conn.Call(Request::PutData(100 + i, 0, ToBytes("x")));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  }
  ASSERT_GT(faults.counts().failed, 0u) << "schedule injected nothing";

  auto stats = conn.Call(Request::GetStats());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(stats->ok());
  std::string json(stats->payload.begin(), stats->payload.end());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"ssp.fault.injected.fail\""), std::string::npos);
  EXPECT_EQ(json.find("\"ssp.fault.injected.fail\":0,"), std::string::npos)
      << "fault counter should be nonzero in " << json;
  // The live registry agrees with the wire snapshot's provenance.
  uint64_t fail_after =
      obs::MetricsRegistry::Global().counter("ssp.fault.injected.fail")
          ->Value();
  EXPECT_GT(fail_after, fail_before);
  (*daemon)->Shutdown();
}

}  // namespace
}  // namespace sharoes::ssp
