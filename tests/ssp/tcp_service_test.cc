// Real-socket tests: the SSP served over TCP on loopback, exercised by
// the wire protocol, remote provisioning, and a full SharoesClient.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/client.h"
#include "core/migration.h"
#include "ssp/tcp_service.h"

namespace sharoes::ssp {
namespace {

TEST(TcpStreamTest, FrameRoundTrip) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok()) << daemon.status();
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(channel.ok()) << channel.status();

  auto resp = (*channel)->Call(Request::PutMetadata(1, 0, {1, 2, 3}));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->ok());
  resp = (*channel)->Call(Request::GetMetadata(1, 0));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->payload, (Bytes{1, 2, 3}));
  resp = (*channel)->Call(Request::GetMetadata(2, 0));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, RespStatus::kNotFound);
  (*daemon)->Shutdown();
}

TEST(TcpStreamTest, LargePayloadAndBatch) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(channel.ok());

  Rng rng(3);
  Bytes big = rng.NextBytes(1 << 20);
  auto resp = (*channel)->Call(Request::PutData(9, 0, big));
  ASSERT_TRUE(resp.ok());
  resp = (*channel)->Call(Request::Batch(
      {Request::GetData(9, 0), Request::GetData(9, 1)}));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->batch.size(), 2u);
  EXPECT_EQ(resp->batch[0].payload, big);
  EXPECT_EQ(resp->batch[1].status, RespStatus::kNotFound);
}

TEST(TcpStreamTest, MultipleConcurrentConnections) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  auto c1 = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  auto c2 = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(c1.ok() && c2.ok());
  ASSERT_TRUE((*c1)->Call(Request::PutMetadata(5, 0, {7})).ok());
  auto resp = (*c2)->Call(Request::GetMetadata(5, 0));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->payload, Bytes{7});
}

TEST(TcpEndToEndTest, RemoteProvisionAndMountOverSockets) {
  // The complete SHAROES flow against a real TCP daemon: provision the
  // enterprise remotely, then run the client filesystem over sockets.
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());

  SimClock clock;
  crypto::CryptoEngineOptions eng_opts;
  eng_opts.cost_model = crypto::CryptoCostModel::Zero();
  eng_opts.signing_key_bits = 512;
  eng_opts.rng_seed = 606;
  crypto::CryptoEngine engine(&clock, eng_opts);

  core::IdentityDirectory identity;
  core::Provisioner::Options popts;
  popts.user_key_bits = 512;
  core::Provisioner prov(&identity, /*server=*/nullptr, &engine, popts);
  auto admin_channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(admin_channel.ok());
  prov.set_remote_channel(admin_channel->get());

  auto alice = prov.CreateUser(100, "alice");
  ASSERT_TRUE(alice.ok());
  auto bob = prov.CreateUser(101, "bob");
  ASSERT_TRUE(bob.ok());

  core::LocalNode root = core::LocalNode::Dir(
      "", 100, fs::kInvalidGroup, fs::Mode::FromOctal(0755));
  root.children.push_back(core::LocalNode::File(
      "hello.txt", 100, fs::kInvalidGroup, fs::Mode::FromOctal(0644),
      ToBytes("over the wire")));
  auto stats = prov.Migrate(root);
  ASSERT_TRUE(stats.ok()) << stats.status();

  // The daemon's store was populated purely through the socket.
  EXPECT_GT(server.store().Stats().object_count, 0u);

  // Mount and operate as bob over his own TCP connection.
  auto bob_channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(bob_channel.ok());
  core::ClientOptions copts;
  core::SharoesClient client(101, bob->priv, &identity, bob_channel->get(),
                             &engine, copts);
  ASSERT_TRUE(client.Mount().ok());
  auto read = client.Read("/hello.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "over the wire");
  // Writes go back over the same socket.
  ASSERT_TRUE(client.Exists("/hello.txt"));
  EXPECT_FALSE(client.Write("/hello.txt", ToBytes("nope")).ok());  // 0644.

  // Alice (owner) writes through her own connection.
  auto alice_channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(alice_channel.ok());
  core::SharoesClient alice_client(100, alice->priv, &identity,
                                   alice_channel->get(), &engine, copts);
  ASSERT_TRUE(alice_client.Mount().ok());
  ASSERT_TRUE(
      alice_client.WriteFile("/hello.txt", ToBytes("updated bytes")).ok());
  client.DropCaches();
  read = client.Read("/hello.txt");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "updated bytes");

  (*daemon)->Shutdown();
}

TEST(TcpStreamTest, ConcurrentClientStress) {
  // Several threads hammer the daemon simultaneously; the store must end
  // up with every write applied and no reply corruption.
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto channel = TcpSspChannel::Connect("127.0.0.1", (*daemon)->port());
      if (!channel.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        fs::InodeNum inode = static_cast<fs::InodeNum>(t) * 1000 + i;
        Bytes payload = {static_cast<uint8_t>(t), static_cast<uint8_t>(i)};
        auto put = (*channel)->Call(Request::PutMetadata(inode, 0, payload));
        if (!put.ok() || !put->ok()) {
          ++failures;
          return;
        }
        auto get = (*channel)->Call(Request::GetMetadata(inode, 0));
        if (!get.ok() || get->payload != payload) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // All writes landed.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      EXPECT_TRUE(server.store()
                      .GetMetadata(static_cast<fs::InodeNum>(t) * 1000 + i, 0)
                      .has_value());
    }
  }
  (*daemon)->Shutdown();
}

TEST(TcpEndToEndTest, DaemonShutdownIsClean) {
  SspServer server;
  auto daemon = TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  uint16_t port = (*daemon)->port();
  (*daemon)->Shutdown();
  (*daemon)->Shutdown();  // Idempotent.
  // New connections are refused after shutdown.
  auto channel = TcpSspChannel::Connect("127.0.0.1", port);
  EXPECT_FALSE(channel.ok());
}

}  // namespace
}  // namespace sharoes::ssp
