// The cluster proof harness (tentpole of the multi-daemon SSP PR):
// a 3-daemon, K=3/W=2/R=2 WAL-backed cluster runs the Andrew workload
// while one replica is SIGKILLed and recovered under it, and the
// client-visible results must be byte-identical to a clean run — the
// quorum machinery, not luck, carries the session through. A scrub
// pass (R = K) then proves read repair converges the survivors' and
// the flapped replica's stores, and the negative leg proves the proof:
// the same kill against an unreplicated cluster with retries off fails
// deterministically.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/sharded_channel.h"
#include "ssp/placement.h"
#include "ssp/scrub.h"
#include "testing/andrew_client.h"
#include "testing/cluster.h"
#include "testing/stress.h"

namespace sharoes::ssp {
namespace {

using core::ShardedChannelOptions;
using testing::ReplicaFlapper;
using testing::TestCluster;

TestCluster::Options ReplicatedWal(const std::string& tag) {
  TestCluster::Options opts;  // 3 nodes, K=3, W=2, R=2 by default.
  opts.tag = tag;
  return opts;
}

Bytes RunCleanBaseline() {
  TestCluster cluster(ReplicatedWal("failover_baseline"));
  cluster.Start();
  auto ent = testing::ProvisionOverCluster(&cluster);
  auto engine = testing::MakeEngine(&ent->clock, 7);
  auto channel = cluster.MakeChannel();
  auto client = testing::MakeClient(ent.get(), channel.get(), engine.get());
  EXPECT_TRUE(client->Mount().ok());
  auto transcript = testing::RunAndrewSequence(client.get());
  EXPECT_TRUE(transcript.ok()) << transcript.status();
  return transcript.ok() ? *transcript : Bytes{};
}

TEST(ClusterFailover, AndrewIsByteIdenticalThroughReplicaSigkill) {
  Bytes baseline = RunCleanBaseline();
  ASSERT_FALSE(baseline.empty());

  TestCluster cluster(ReplicatedWal("failover_chaos"));
  cluster.Start();
  auto ent = testing::ProvisionOverCluster(&cluster);
  auto engine = testing::MakeEngine(&ent->clock, 7);
  auto channel = cluster.MakeChannel();
  auto client = testing::MakeClient(ent.get(), channel.get(), engine.get());
  ASSERT_TRUE(client->Mount().ok());

  Bytes transcript;
  {
    // SIGKILL node 1 immediately (the Andrew run starts against a
    // 2/3 cluster), recover it from its WAL after 60ms, serve 50ms,
    // kill again — until the workload is done AND at least two full
    // kill/recover cycles genuinely interleaved with live traffic.
    ReplicaFlapper flapper(cluster.node(1), /*down_ms=*/60, /*up_ms=*/50);
    auto result = testing::RunAndrewSequence(client.get());
    ASSERT_TRUE(result.ok()) << result.status();
    transcript = std::move(*result);
    for (int round = 0; flapper.flaps() < 2 && round < 2000; ++round) {
      client->DropCaches();
      for (int i = 0; i < testing::kSourceFiles; ++i) {
        auto content =
            client->Read("/proj/src/f" + std::to_string(i) + ".c");
        ASSERT_TRUE(content.ok()) << content.status();
        ASSERT_EQ(*content, testing::SourceContent(i));
      }
    }
    EXPECT_GE(flapper.flaps(), 2);
  }  // Flapper stops; node 1 is up (recovered from its WAL).

  // The headline: a client cannot tell this cluster lost a replica.
  EXPECT_EQ(transcript, baseline);

  // Anti-entropy scrub: a fresh session reading with R = K quorum-reads
  // every object a full traversal touches, and read repair re-puts the
  // winning copy to whichever replica missed it while dead. Afterwards
  // all three stores must agree byte-for-byte on every file's data.
  ClusterConfig scrub_config = cluster.config();
  scrub_config.read_quorum = scrub_config.replication;
  auto scrub_channel = cluster.MakeChannelWithConfig(scrub_config);
  ASSERT_NE(scrub_channel, nullptr);
  auto scrub_engine = testing::MakeEngine(&ent->clock, 11);
  auto scrub_client =
      testing::MakeClient(ent.get(), scrub_channel.get(),
                          scrub_engine.get());
  ASSERT_TRUE(scrub_client->Mount().ok());
  std::vector<std::pair<std::string, fs::InodeNum>> files;
  for (int i = 0; i < testing::kSourceFiles; ++i) {
    for (std::string path : {"/proj/src/f" + std::to_string(i) + ".c",
                             "/proj/obj/f" + std::to_string(i) + ".o"}) {
      auto content = scrub_client->Read(path);
      ASSERT_TRUE(content.ok()) << path << ": " << content.status();
      auto attrs = scrub_client->Getattr(path);
      ASSERT_TRUE(attrs.ok());
      files.emplace_back(path, attrs->inode);
    }
  }
  for (const auto& [path, inode] : files) {
    for (uint32_t block = 0; block < 8; ++block) {
      auto copy0 = cluster.node(0)->server()->store().GetData(inode, block);
      auto copy1 = cluster.node(1)->server()->store().GetData(inode, block);
      auto copy2 = cluster.node(2)->server()->store().GetData(inode, block);
      ASSERT_EQ(copy0.has_value(), copy1.has_value())
          << path << " block " << block;
      ASSERT_EQ(copy0.has_value(), copy2.has_value())
          << path << " block " << block;
      if (copy0.has_value()) {
        EXPECT_EQ(*copy0, *copy1) << path << " block " << block;
        EXPECT_EQ(*copy0, *copy2) << path << " block " << block;
      }
    }
  }
}

TEST(ClusterFailover, QuorumReadRepairsAReplicaThatMissedAWrite) {
  // Deterministic divergence, no timing: kill node 2, write while it is
  // down (W=2 acks from the survivors), bring it back empty (no WAL),
  // and read the key whose PREFERRED replica is the amnesiac — the R=2
  // quorum then provably contains one stale and one fresh reply.
  TestCluster::Options opts = ReplicatedWal("failover_repair");
  opts.wal = false;  // A restarted node comes back with nothing.
  TestCluster cluster(opts);
  cluster.Start();

  uint64_t inode = 0;
  for (uint64_t candidate = 1; candidate < 1000; ++candidate) {
    if (cluster.ring().PrimaryIndexFor(candidate) == 2) {
      inode = candidate;
      break;
    }
  }
  ASSERT_NE(inode, 0u) << "no key prefers node 2 below 1000";
  Bytes v2{0xCA, 0xFE, 0xBA, 0xBE, 0x02};

  auto writer = cluster.MakeChannel();
  ASSERT_NE(writer, nullptr);
  cluster.node(2)->KillHard();
  auto put = writer->Call(Request::PutData(inode, 0, v2));
  ASSERT_TRUE(put.ok()) << put.status();
  ASSERT_EQ(put->status, RespStatus::kOk) << "W=2 must ack without node 2";
  cluster.node(2)->Restart();
  ASSERT_FALSE(
      cluster.node(2)->server()->store().GetData(inode, 0).has_value())
      << "node 2 must start amnesiac for the divergence to be real";

  // A FRESH channel (no session fingerprint of the write) must still
  // return the quorum-fresh copy: the preferred replica answers
  // kNotFound, the overlap replica answers v2, and the winner repairs
  // the amnesiac inline.
  auto reader = cluster.MakeChannel();
  ASSERT_NE(reader, nullptr);
  auto got = reader->Call(Request::GetData(inode, 0));
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->status, RespStatus::kOk);
  EXPECT_EQ(got->payload, v2);
  EXPECT_GE(reader->read_repairs(), 1u);
  auto healed = cluster.node(2)->server()->store().GetData(inode, 0);
  ASSERT_TRUE(healed.has_value()) << "read repair did not re-put";
  EXPECT_EQ(*healed, v2);

  // And the writing channel recognizes its own write by fingerprint.
  auto own = writer->Call(Request::GetData(inode, 0));
  ASSERT_TRUE(own.ok());
  ASSERT_EQ(own->status, RespStatus::kOk);
  EXPECT_EQ(own->payload, v2);
}

/// Polls `cond` for up to two seconds (quorum writes ack at W; the
/// straggler replica's copy can land a beat later).
bool Eventually(const std::function<bool()>& cond) {
  for (int i = 0; i < 200; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return cond();
}

/// Picks `count` inodes whose PREFERRED replica is `node_index`, so the
/// default read quorum provably contains that node.
std::vector<uint64_t> InodesPreferring(const TestCluster& cluster,
                                       uint32_t node_index, size_t count) {
  std::vector<uint64_t> inodes;
  for (uint64_t candidate = 1; candidate < 5000 && inodes.size() < count;
       ++candidate) {
    if (cluster.ring().PrimaryIndexFor(candidate) == node_index) {
      inodes.push_back(candidate);
    }
  }
  EXPECT_EQ(inodes.size(), count) << "rebalance the test key range";
  return inodes;
}

TEST(ClusterFailover, DeleteSurvivesAnAmnesiacReplicaRestart) {
  // The resurrection regression (tentpole of the tombstone PR). The
  // dangerous interleaving: a replica holds a key, sleeps through its
  // deletion, and recovers from its WAL still offering the stale live
  // copy. With erase-style deletes the survivors hold NOTHING to refute
  // it, so a quorum read resurrects the key and read repair spreads it
  // back to the healthy majority (the negative control below shows
  // exactly that). With replicated tombstones the delete IS state: a
  // versioned tombstone on the write quorum outranks the stale copy.
  TestCluster cluster(ReplicatedWal("failover_tombstone"));
  cluster.Start();

  // Two keys preferring node 2 (the future amnesiac is in every default
  // read quorum): one healed by read repair, one — never read — by the
  // anti-entropy scrubber.
  std::vector<uint64_t> inodes = InodesPreferring(cluster, 2, 2);
  Bytes v{0xDE, 0xAD, 0xBE, 0xEF, 0x01};

  auto writer = cluster.MakeChannel();
  ASSERT_NE(writer, nullptr);
  for (uint64_t inode : inodes) {
    auto put = writer->Call(Request::PutData(inode, 0, v));
    ASSERT_TRUE(put.ok()) << put.status();
    ASSERT_EQ(put->status, RespStatus::kOk);
  }
  // All three replicas must hold the value before the kill, or "slept
  // through the delete" would not be what this test exercises.
  for (int node = 0; node < 3; ++node) {
    for (uint64_t inode : inodes) {
      ASSERT_TRUE(Eventually([&] {
        return cluster.node(node)
            ->server()
            ->store()
            .GetData(inode, 0)
            .has_value();
      })) << "node " << node << " never received inode " << inode;
    }
  }

  cluster.node(2)->KillHard();
  for (uint64_t inode : inodes) {
    auto del = writer->Call(Request::DeleteData(inode, 0));
    ASSERT_TRUE(del.ok()) << del.status();
    ASSERT_EQ(del->status, RespStatus::kOk) << "W=2 must ack without node 2";
  }
  cluster.node(2)->Restart();  // WAL replays the puts — not the deletes.
  for (uint64_t inode : inodes) {
    ASSERT_TRUE(
        cluster.node(2)->server()->store().GetData(inode, 0).has_value())
        << "node 2 must come back offering the stale copy for the "
           "divergence to be real";
  }

  // Read-repair leg: a FRESH channel (no session marks — this client
  // never saw the delete) must still see it, and push it onto the
  // amnesiac inline.
  auto reader = cluster.MakeChannel();
  ASSERT_NE(reader, nullptr);
  auto got = reader->Call(Request::GetData(inodes[0], 0));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->status, RespStatus::kNotFound) << "resurrected!";
  EXPECT_FALSE(
      cluster.node(2)->server()->store().GetData(inodes[0], 0).has_value())
      << "read repair did not re-delete the stale copy";
  // The deleting channel agrees with itself, too (its session mark was
  // flipped by the delete, not erased).
  auto own = writer->Call(Request::GetData(inodes[0], 0));
  ASSERT_TRUE(own.ok()) << own.status();
  EXPECT_EQ(own->status, RespStatus::kNotFound);

  // Scrubber leg: nobody ever reads inodes[1]; a node-0 anti-entropy
  // pass must find the divergence and re-delete the stale copy. (The
  // same pass already sees inodes[0] all-tombstone — the read repair
  // above healed it — so node 0's tombstone for it is GC'd here; the
  // pass's count joins the GC tally below.)
  auto scrub0 = cluster.MakeScrubber(0);
  ScrubPass pass = scrub0->RunOnce();
  EXPECT_GE(pass.examined, 2u);
  EXPECT_GE(pass.repaired, 1u);
  EXPECT_EQ(pass.unreachable, 0u);
  EXPECT_FALSE(
      cluster.node(2)->server()->store().GetData(inodes[1], 0).has_value())
      << "the scrubber did not re-delete the stale copy";

  // GC leg: once every replica agrees the keys are dead, the tombstones
  // themselves are garbage — each node's own full-quorum pass purges
  // them and the stores return to their (empty) baseline.
  auto scrub1 = cluster.MakeScrubber(1);
  auto scrub2 = cluster.MakeScrubber(2);
  uint64_t gc_total = pass.tombstones_gc;
  for (int round = 0; round < 2; ++round) {
    gc_total += scrub0->RunOnce().tombstones_gc;
    gc_total += scrub1->RunOnce().tombstones_gc;
    gc_total += scrub2->RunOnce().tombstones_gc;
  }
  EXPECT_EQ(gc_total, 6u) << "one tombstone per node per key";
  for (int node = 0; node < 3; ++node) {
    auto versions = cluster.node(node)->server()->store().ListVersions();
    EXPECT_TRUE(versions.empty())
        << "node " << node << " still holds " << versions.size()
        << " entries after full-quorum GC";
    auto stats = cluster.node(node)->server()->store().Stats();
    EXPECT_EQ(stats.tombstone_count, 0u) << "node " << node;
  }
}

TEST(ClusterFailover, WithoutTombstonesTheSameRestartResurrectsTheKey) {
  // Negative control: the identical choreography against erase-style
  // deletes (the pre-tombstone seed semantics) MUST resurrect the key.
  // If this leg ever starts passing as kNotFound, the positive test
  // above is green for some hidden reason other than tombstones.
  TestCluster::Options opts = ReplicatedWal("failover_resurrect");
  opts.tombstones = false;
  TestCluster cluster(opts);
  cluster.Start();

  std::vector<uint64_t> inodes = InodesPreferring(cluster, 2, 1);
  Bytes v{0xDE, 0xAD, 0xBE, 0xEF, 0x02};

  auto writer = cluster.MakeChannel();
  ASSERT_NE(writer, nullptr);
  auto put = writer->Call(Request::PutData(inodes[0], 0, v));
  ASSERT_TRUE(put.ok()) << put.status();
  ASSERT_EQ(put->status, RespStatus::kOk);
  for (int node = 0; node < 3; ++node) {
    ASSERT_TRUE(Eventually([&] {
      return cluster.node(node)
          ->server()
          ->store()
          .GetData(inodes[0], 0)
          .has_value();
    }));
  }

  cluster.node(2)->KillHard();
  auto del = writer->Call(Request::DeleteData(inodes[0], 0));
  ASSERT_TRUE(del.ok()) << del.status();
  ASSERT_EQ(del->status, RespStatus::kOk);
  cluster.node(2)->Restart();

  // A fresh reader finds one stale live copy against two erased (not
  // tombstoned — silent) replicas, and the zombie wins.
  auto reader = cluster.MakeChannel();
  ASSERT_NE(reader, nullptr);
  auto got = reader->Call(Request::GetData(inodes[0], 0));
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(got->status, RespStatus::kOk)
      << "erase-style delete did NOT resurrect — the positive leg above "
         "is proving nothing";
  EXPECT_EQ(got->payload, v);
}

TEST(ClusterFailover, WithoutReplicationAndRetriesTheSameKillIsFatal) {
  // The control experiment: replication off (K=1), transport retry and
  // quorum rounds cut to one attempt. Kill the daemon that owns the
  // file and the read MUST fail — if it ever passes, the positive legs
  // above are passing for the wrong reason (some hidden retry or cache
  // is doing the work instead of the quorum machinery).
  TestCluster::Options opts;
  opts.replication = 1;
  opts.write_quorum = 1;
  opts.read_quorum = 1;
  opts.wal = false;
  opts.tag = "failover_negative";
  TestCluster cluster(opts);
  cluster.Start();
  auto ent = testing::ProvisionOverCluster(&cluster);
  auto engine = testing::MakeEngine(&ent->clock, 7);

  ShardedChannelOptions fragile;
  fragile.node_retry.max_attempts = 1;
  fragile.quorum_rounds = 1;
  auto channel = cluster.MakeChannel(fragile);
  ASSERT_NE(channel, nullptr);
  auto client = testing::MakeClient(ent.get(), channel.get(), engine.get());
  ASSERT_TRUE(client->Mount().ok());

  core::CreateOptions copts;
  copts.mode = fs::Mode::FromOctal(0644);
  ASSERT_TRUE(client->Create("/doomed", copts).ok());
  Bytes content{1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(client->WriteFile("/doomed", content).ok());
  auto attrs = client->Getattr("/doomed");
  ASSERT_TRUE(attrs.ok());

  uint32_t owner = cluster.ring().PrimaryIndexFor(attrs->inode);
  cluster.node(static_cast<int>(owner))->KillHard();
  client->DropCaches();
  auto read = client->Read("/doomed");
  EXPECT_FALSE(read.ok())
      << "unreplicated read of a dead shard succeeded — the failover "
         "suite would be proving nothing";
}

}  // namespace
}  // namespace sharoes::ssp
