// Cluster concurrency under churn (TSan leg of the multi-daemon SSP
// PR): several client threads, each with its own sharded channel, run
// read-your-write traffic against a 3-daemon K=3/W=2/R=2 cluster while
// one replica is SIGKILLed and WAL-recovered in a loop. Every op must
// succeed through quorum failover, and every read must observe the
// thread's own latest write. Runs under -DSHAROES_SANITIZE=thread in
// CI: the interesting bugs here are races between the per-node fan-out
// threads, the flapper's daemon teardown, and WAL recovery.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/sharded_channel.h"
#include "ssp/message.h"
#include "testing/cluster.h"
#include "testing/stress.h"

namespace sharoes::ssp {
namespace {

using core::ShardedChannelOptions;
using testing::ReplicaFlapper;
using testing::TestCluster;

Bytes TaggedPayload(int thread, int op) {
  Bytes payload;
  for (int b = 0; b < 48; ++b) {
    payload.push_back(
        static_cast<uint8_t>((thread * 131 + op * 17 + b * 7) & 0xFF));
  }
  return payload;
}

TEST(ClusterStress, ConcurrentClientsSurviveAFlappingReplica) {
  TestCluster::Options opts;  // 3 nodes, K=3, W=2, R=2, WAL-backed.
  opts.tag = "cluster_stress";
  TestCluster cluster(opts);
  cluster.Start();

  constexpr int kThreads = 4;
  constexpr int kOps = 24;
  constexpr uint64_t kInodesPerThread = 8;

  ReplicaFlapper flapper(cluster.node(1), /*down_ms=*/40, /*up_ms=*/40);
  testing::StressThreads(kThreads, [&](int t) -> Status {
    // Generous round budget: a thread may catch the victim mid-teardown
    // repeatedly; what is not allowed is giving up.
    ShardedChannelOptions sopts;
    sopts.quorum_rounds = 12;
    sopts.seed = static_cast<uint64_t>(t) + 1;
    auto channel = core::ShardedChannel::Create(
        cluster.config(), cluster.node_factory(), sopts);
    if (!channel.ok()) return channel.status();
    // Disjoint inode ranges per thread: each thread's read-your-write
    // chain is private, so any cross-talk is a routing bug, not a
    // workload artifact.
    const uint64_t base = 1000 + static_cast<uint64_t>(t) * 100;
    for (int op = 0; op < kOps; ++op) {
      uint64_t inode = base + static_cast<uint64_t>(op) % kInodesPerThread;
      auto put = (*channel)->Call(
          Request::PutData(inode, 0, TaggedPayload(t, op)));
      if (!put.ok()) return put.status();
      if (put->status != RespStatus::kOk) {
        return Status::IoError("put answered " +
                               std::string(RespStatusName(put->status)));
      }
      auto got = (*channel)->Call(Request::GetData(inode, 0));
      if (!got.ok()) return got.status();
      if (got->status != RespStatus::kOk) {
        return Status::IoError("get answered " +
                               std::string(RespStatusName(got->status)));
      }
      if (got->payload != TaggedPayload(t, op)) {
        return Status::IoError("thread " + std::to_string(t) + " op " +
                               std::to_string(op) +
                               " read someone else's write");
      }
    }
    return Status::OK();
  });
  flapper.Stop();

  // Post-churn scrub: a full-quorum (R = K) reader must find every
  // thread's final write on the winning side of each quorum, healing
  // whatever the flapped replica missed along the way.
  ClusterConfig scrub = cluster.config();
  scrub.read_quorum = scrub.replication;
  auto reader = cluster.MakeChannelWithConfig(scrub);
  ASSERT_NE(reader, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kInodesPerThread; ++i) {
      uint64_t inode = 1000 + static_cast<uint64_t>(t) * 100 + i;
      // kOps is a multiple of kInodesPerThread, so slot i's final write
      // was op (kOps - kInodesPerThread + i).
      int last_op = static_cast<int>(kOps - kInodesPerThread + i);
      auto got = reader->Call(Request::GetData(inode, 0));
      ASSERT_TRUE(got.ok()) << got.status();
      ASSERT_EQ(got->status, RespStatus::kOk)
          << "thread " << t << " inode " << inode;
      EXPECT_EQ(got->payload, TaggedPayload(t, last_op))
          << "thread " << t << " inode " << inode;
    }
  }
}

}  // namespace
}  // namespace sharoes::ssp
