#include <gtest/gtest.h>

#include "util/binary_io.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/result.h"
#include "util/sim_clock.h"
#include "util/status.h"

namespace sharoes {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("inode 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "inode 42");
  EXPECT_EQ(s.ToString(), "not-found: inode 42");
}

TEST(StatusTest, CopyIsCheapAndEqualContent) {
  Status s = Status::PermissionDenied("no CAP");
  Status t = s;
  EXPECT_TRUE(t.IsPermissionDenied());
  EXPECT_EQ(t.message(), "no CAP");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad = Status::NotFound("x");
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.value_or(-1), -1);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  SHAROES_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto r = QuarterEven(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(QuarterEven(6).ok());  // 6/2=3 is odd.
}

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(HexEncode(b), "00deadbeefff");
  bool ok = false;
  EXPECT_EQ(HexDecode("00deadbeefff", &ok), b);
  EXPECT_TRUE(ok);
}

TEST(BytesTest, HexDecodeRejectsMalformed) {
  bool ok = true;
  HexDecode("abc", &ok);  // Odd length.
  EXPECT_FALSE(ok);
  ok = true;
  HexDecode("zz", &ok);
  EXPECT_FALSE(ok);
}

TEST(BytesTest, ConstantTimeEquals) {
  EXPECT_TRUE(ConstantTimeEquals({1, 2, 3}, {1, 2, 3}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ConstantTimeEquals({1, 2}, {1, 2, 3}));
}

TEST(BytesTest, ConstantTimeEqualsAgreesWithOperatorEq) {
  // Every secret-derived comparison routes through ConstantTimeEquals;
  // it must be a drop-in for operator== in both argument orders.
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    Bytes a = rng.NextBytes(rng.NextU64() % 48);
    Bytes b = a;
    if (i % 3 == 0 && !b.empty()) b[rng.NextU64() % b.size()] ^= 1;
    if (i % 5 == 0) b = rng.NextBytes(rng.NextU64() % 48);
    EXPECT_EQ(ConstantTimeEquals(a, b), a == b);
    EXPECT_EQ(ConstantTimeEquals(b, a), b == a);
    EXPECT_EQ(ConstantTimeEquals(a, b), ConstantTimeEquals(b, a));
  }
}

TEST(BytesTest, StringConversions) {
  EXPECT_EQ(ToString(ToBytes("hello")), "hello");
  EXPECT_EQ(ToBytes("").size(), 0u);
}

TEST(BinaryIoTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutBytes({1, 2, 3});
  w.PutString("name");
  w.PutRaw(Bytes{9, 9});
  Bytes buf = w.Take();

  BinaryReader r(buf);
  EXPECT_EQ(r.GetU8(), 0xAB);
  EXPECT_EQ(r.GetU16(), 0xBEEF);
  EXPECT_EQ(r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetBytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.GetString(), "name");
  EXPECT_EQ(r.GetRaw(2), (Bytes{9, 9}));
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.Finish("test").ok());
}

TEST(BinaryIoTest, TruncationLatchesFailure) {
  BinaryWriter w;
  w.PutU32(7);
  Bytes buf = w.Take();
  BinaryReader r(buf);
  r.GetU64();  // Over-read.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.GetU32(), 0u);  // Still failed; returns zero.
  EXPECT_FALSE(r.Finish("test").ok());
  EXPECT_EQ(r.Finish("test").code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, TrailingBytesDetected) {
  BinaryWriter w;
  w.PutU32(7);
  w.PutU8(1);
  Bytes buf = w.Take();
  BinaryReader r(buf);
  r.GetU32();
  Status s = r.Finish("test");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(BinaryIoTest, HugeLengthPrefixFailsCleanly) {
  // A length prefix larger than the buffer must not allocate or crash.
  Bytes buf = {0xFF, 0xFF, 0xFF, 0x7F, 0x01};
  BinaryReader r(buf);
  Bytes b = r.GetBytes();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(b.empty());
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    uint64_t v = rng.NextInRange(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBytesSizes) {
  Rng rng(6);
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u}) {
    EXPECT_EQ(rng.NextBytes(n).size(), n);
  }
}

TEST(SimClockTest, AdvanceAccumulatesByCategory) {
  SimClock clock;
  clock.AdvanceMs(10, CostCategory::kNetwork);
  clock.AdvanceMs(5, CostCategory::kCrypto);
  clock.AdvanceMs(1, CostCategory::kOther);
  CostSnapshot s = clock.snapshot();
  EXPECT_EQ(s.network_ns(), 10ull * 1000 * 1000);
  EXPECT_EQ(s.crypto_ns(), 5ull * 1000 * 1000);
  EXPECT_EQ(s.other_ns(), 1ull * 1000 * 1000);
  EXPECT_EQ(s.total_ns, 16ull * 1000 * 1000);
  EXPECT_DOUBLE_EQ(s.total_ms(), 16.0);
}

TEST(SimClockTest, SnapshotDeltas) {
  SimClock clock;
  clock.AdvanceMs(3, CostCategory::kNetwork);
  CostSnapshot before = clock.snapshot();
  clock.AdvanceMs(4, CostCategory::kCrypto);
  CostSnapshot delta = clock.snapshot() - before;
  EXPECT_EQ(delta.network_ns(), 0u);
  EXPECT_EQ(delta.crypto_ns(), 4ull * 1000 * 1000);
}

TEST(SimClockTest, ResetClearsState) {
  SimClock clock;
  clock.AdvanceMs(3, CostCategory::kOther);
  clock.Reset();
  EXPECT_EQ(clock.now_ns(), 0u);
}

TEST(CostCategoryTest, Names) {
  EXPECT_EQ(CostCategoryName(CostCategory::kNetwork), "NETWORK");
  EXPECT_EQ(CostCategoryName(CostCategory::kCrypto), "CRYPTO");
  EXPECT_EQ(CostCategoryName(CostCategory::kOther), "OTHER");
}

}  // namespace
}  // namespace sharoes
