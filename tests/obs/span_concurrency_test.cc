// Concurrency suite for the span layer: publishers hammering the slow
// ring and slowest table while snapshots race in, the slow threshold
// flipping underneath both, and traced histogram recording racing
// snapshots (the exemplar path). Run under -DSHAROES_SANITIZE=thread —
// the collector claims to be lock-free and TSan-clean, and this is
// where that claim is checked.
//
// Torn-read detection: every published record is self-describing
// (phase_us[kOp] == total_us == trace_id * 10), so a snapshot that ever
// blends two records violates the invariant and fails deterministically.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "testing/stress.h"

namespace sharoes::obs {
namespace {

using sharoes::testing::StressThreads;

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 2000;

SpanRecord SelfDescribing(uint64_t trace_id) {
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.op = "Synthetic";
  rec.kind = 'S';
  rec.total_us = trace_id * 10;
  rec.phase_us[static_cast<size_t>(Phase::kOp)] =
      static_cast<uint32_t>(trace_id * 10);
  return rec;
}

Status CheckConsistent(const SpanCollector::Snapshot& snap) {
  auto check = [](const SpanRecord& rec) -> Status {
    if (rec.total_us != rec.trace_id * 10 ||
        rec.phase_us[static_cast<size_t>(Phase::kOp)] != rec.total_us) {
      return Status::Internal("torn span record: trace " +
                              std::to_string(rec.trace_id) + " total " +
                              std::to_string(rec.total_us));
    }
    if (std::string(rec.op) != "Synthetic") {
      return Status::Internal("torn op pointer");
    }
    return Status::OK();
  };
  for (const SpanRecord& rec : snap.slow) {
    Status s = check(rec);
    if (!s.ok()) return s;
  }
  for (const SpanRecord& rec : snap.slowest) {
    Status s = check(rec);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

class SpanConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_threshold_ = SlowRequestThresholdUs();
    SpanCollector::Global().Reset();
  }
  void TearDown() override {
    SetSlowRequestThresholdUs(prev_threshold_);
    SpanCollector::Global().Reset();
  }
  uint64_t prev_threshold_ = 0;
};

TEST_F(SpanConcurrencyTest, PublishRacesSnapshot) {
  SetSlowRequestThresholdUs(1);  // Every record is ring-worthy.
  StressThreads(kThreads, [&](int t) -> Status {
    if (t == 0) {
      // Reader: every snapshot must contain only unblended records.
      for (int i = 0; i < 400; ++i) {
        Status s = CheckConsistent(SpanCollector::Global().Snap());
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
    for (int i = 1; i <= kOpsPerThread; ++i) {
      SpanCollector::Global().Publish(SelfDescribing(
          static_cast<uint64_t>(t) * 100000 + static_cast<uint64_t>(i)));
    }
    return Status::OK();
  });
  // Settled state: both tables full of consistent records. (Exact top-K
  // membership is a single-writer property — under contention a claim
  // may be dropped by design — so the deterministic top-K check lives in
  // span_test.cc; here the tables just have to be full and unblended.)
  auto snap = SpanCollector::Global().Snap();
  ASSERT_TRUE(CheckConsistent(snap).ok());
  EXPECT_EQ(snap.slow.size(), SpanCollector::kRingSlots);
  EXPECT_EQ(snap.slowest.size(), SpanCollector::kSlowestSlots);
}

TEST_F(SpanConcurrencyTest, ThresholdFlipsUnderLoad) {
  // A publisher fleet races an admin thread toggling the threshold
  // (exactly what `sharoes_sspd --slow-request-us` + live load does) and
  // a reader draining. No torn records, no crashes, and afterwards a
  // disabled ring stays silent.
  StressThreads(kThreads, [&](int t) -> Status {
    if (t == 0) {
      for (int i = 0; i < 500; ++i) {
        SetSlowRequestThresholdUs(i % 2 == 0 ? 0 : 1);
      }
      return Status::OK();
    }
    if (t == 1) {
      for (int i = 0; i < 400; ++i) {
        Status s = CheckConsistent(SpanCollector::Global().Snap());
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
    for (int i = 1; i <= kOpsPerThread; ++i) {
      SpanCollector::Global().Publish(SelfDescribing(
          static_cast<uint64_t>(t) * 100000 + static_cast<uint64_t>(i)));
    }
    return Status::OK();
  });
  SpanCollector::Global().Reset();
  SetSlowRequestThresholdUs(0);
  SpanCollector::Global().Publish(SelfDescribing(42));
  EXPECT_TRUE(SpanCollector::Global().Snap().slow.empty());
}

TEST_F(SpanConcurrencyTest, TimelineLifecyclesAreThreadLocal) {
  // Whole-timeline lifecycles on every thread concurrently: ambient
  // installs must never leak across threads, and traceless timelines
  // must never publish.
  SetSlowRequestThresholdUs(1);
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < 500; ++i) {
      SpanTimeline tl;
      const bool traced = (t % 2 == 0);
      tl.Start(traced ? NextTraceId() : 0, "Synthetic", 0, 'C');
      if (!TimelineActive()) {
        return Status::Internal("own timeline not ambient");
      }
      {
        PhaseScope scope(Phase::kStore);
      }
      tl.Finish();
      if (TimelineActive()) {
        return Status::Internal("timeline leaked past Finish");
      }
    }
    return Status::OK();
  });
  // Only traced timelines published (threads 0,2,4,6 x 500 each); the
  // collector never saw a zero trace id.
  for (const SpanRecord& rec : SpanCollector::Global().Snap().slow) {
    EXPECT_NE(rec.trace_id, 0u);
    EXPECT_STREQ(rec.op, "Synthetic");
  }
}

TEST_F(SpanConcurrencyTest, TracedRecordingRacesExemplarReads) {
  // Histogram exemplars: traced writers store per-bucket trace ids while
  // readers snapshot and chase quantile exemplars. TSan-clean, and every
  // exemplar a reader sees must be a real trace id some writer recorded
  // (trace ids here encode the thread + iteration that wrote them).
  Histogram h;
  StressThreads(kThreads, [&](int t) -> Status {
    if (t == 0) {
      for (int i = 0; i < 400; ++i) {
        HistogramSnapshot snap = h.Snapshot();
        if (snap.count == 0) continue;
        uint64_t ex = snap.ExemplarNear(0.99);
        if (ex != 0 && (ex < 1000000u ||
                        ex >= static_cast<uint64_t>(kThreads) * 1000000u)) {
          return Status::Internal("exemplar is not a recorded trace id");
        }
      }
      return Status::OK();
    }
    for (int i = 0; i < kOpsPerThread; ++i) {
      ScopedTraceContext trace(
          static_cast<uint64_t>(t) * 1000000 + static_cast<uint64_t>(i), 0);
      h.Record(static_cast<uint64_t>(t) * 100 + static_cast<uint64_t>(i % 7));
    }
    return Status::OK();
  });
  HistogramSnapshot final_snap = h.Snapshot();
  EXPECT_EQ(final_snap.count,
            static_cast<uint64_t>(kThreads - 1) * kOpsPerThread);
  EXPECT_NE(final_snap.ExemplarNear(0.5), 0u);
}

TEST_F(SpanConcurrencyTest, UntracedRecordingLeavesNoExemplars) {
  // The exemplar fast path: recording without an ambient trace must not
  // touch the exemplar array at all, even under concurrency.
  Histogram h;
  StressThreads(kThreads, [&](int) -> Status {
    for (int i = 0; i < kOpsPerThread; ++i) {
      h.Record(static_cast<uint64_t>(i % 100));
    }
    return Status::OK();
  });
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_TRUE(snap.exemplars.empty());
  EXPECT_EQ(snap.ExemplarNear(0.99), 0u);
}

}  // namespace
}  // namespace sharoes::obs
