// Histogram math and registry semantics: bucket boundaries, percentile
// error bounds, snapshot/merge associativity, gauge lifecycle, the
// runtime kill switch, and the JSON rendering consumed by kGetStats.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "util/random.h"

namespace sharoes::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, DisabledCounterDoesNotMove) {
  Counter c;
  SetMetricsEnabled(false);
  c.Add(100);
  SetMetricsEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

TEST(HistogramTest, SmallValuesAreExactBuckets) {
  // Values below kSubBuckets land in their own bucket: no estimation
  // error at all in the range where latencies are small.
  for (uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketLowerBound(v), v);
  }
}

TEST(HistogramTest, BucketLowerBoundInvertsBucketIndex) {
  // Every bucket's lower bound must map back to that bucket, and the
  // value just below it must map to the previous bucket.
  for (size_t i = 0; i < 40 * Histogram::kSubBuckets; ++i) {
    uint64_t lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "lower bound of bucket " << i;
    if (lo > 0) {
      EXPECT_EQ(Histogram::BucketIndex(lo - 1), i - 1)
          << "value below bucket " << i;
    }
  }
}

TEST(HistogramTest, PowerOfTwoBoundaries) {
  // Octave edges are the interesting spots: 2^k starts a new octave.
  for (unsigned e = Histogram::kSubBucketBits; e < 63; ++e) {
    uint64_t v = 1ull << e;
    size_t at = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(at), v);
    EXPECT_EQ(Histogram::BucketIndex(v - 1), at - 1);
  }
  // The top of the u64 range must still map inside the bucket array.
  EXPECT_LT(Histogram::BucketIndex(~0ull), Histogram::kNumBuckets);
}

TEST(HistogramTest, BucketRelativeWidthIsBounded) {
  // The estimation-error guarantee: bucket width / lower bound is at
  // most 1/kSubBuckets for every bucket above the exact range.
  for (size_t i = Histogram::kSubBuckets;
       i + 1 < 40 * Histogram::kSubBuckets; ++i) {
    uint64_t lo = Histogram::BucketLowerBound(i);
    uint64_t width = Histogram::BucketLowerBound(i + 1) - lo;
    EXPECT_LE(static_cast<double>(width),
              static_cast<double>(lo) / Histogram::kSubBuckets + 1e-9)
        << "bucket " << i;
  }
}

TEST(HistogramTest, CountSumMinMax) {
  Histogram h;
  h.Record(5);
  h.Record(1000);
  h.Record(37);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1042u);
  EXPECT_EQ(snap.min, 5u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1042.0 / 3.0);
}

TEST(HistogramTest, EmptySnapshotIsZero) {
  Histogram h;
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, PercentileErrorBound) {
  // Percentiles of a log-uniform sample must land within the documented
  // relative error (1/kSubBuckets) of the exact order statistic.
  Histogram h;
  std::vector<uint64_t> values;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over [1, 2^30): exercises many octaves.
    uint64_t v = 1ull << (rng.NextU64() % 30);
    v += rng.NextU64() % v;
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  HistogramSnapshot snap = h.Snapshot();
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(values.size()));
    if (rank >= values.size()) rank = values.size() - 1;
    double exact = static_cast<double>(values[rank]);
    double est = static_cast<double>(snap.Percentile(q));
    double rel_err = std::abs(est - exact) / exact;
    EXPECT_LE(rel_err, 1.0 / Histogram::kSubBuckets + 0.01)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(HistogramTest, PercentilesAreClampedToRecordedRange) {
  Histogram h;
  h.Record(100);
  h.Record(100);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Percentile(0.0), 100u);
  EXPECT_EQ(snap.Percentile(1.0), 100u);
}

TEST(HistogramTest, MergeIsAssociative) {
  Histogram ha, hb, hc;
  Rng rng(11);
  for (int i = 0; i < 500; ++i) ha.Record(rng.NextU64() % 10000);
  for (int i = 0; i < 300; ++i) hb.Record(rng.NextU64() % 100);
  for (int i = 0; i < 700; ++i) hc.Record(1 + rng.NextU64() % 1000000);
  HistogramSnapshot a = ha.Snapshot(), b = hb.Snapshot(), c = hc.Snapshot();

  HistogramSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot right = a;
  right.Merge(bc);

  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum, right.sum);
  EXPECT_EQ(left.min, right.min);
  EXPECT_EQ(left.max, right.max);
  EXPECT_EQ(left.buckets, right.buckets);
  for (double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(left.Percentile(q), right.Percentile(q)) << "q=" << q;
  }
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram h;
  h.Record(42);
  HistogramSnapshot snap = h.Snapshot();
  HistogramSnapshot empty;
  snap.Merge(empty);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 42u);
  HistogramSnapshot other = empty;
  other.Merge(snap);
  EXPECT_EQ(other.count, 1u);
  EXPECT_EQ(other.min, 42u);
  EXPECT_EQ(other.max, 42u);
}

TEST(HistogramTest, DisabledHistogramDoesNotRecord) {
  Histogram h;
  SetMetricsEnabled(false);
  h.Record(7);
  SetMetricsEnabled(true);
  EXPECT_EQ(h.Snapshot().count, 0u);
}

TEST(HistogramTest, UntracedSamplesLeaveNoExemplars) {
  Histogram h;
  h.Record(100);
  h.Record(5000);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_TRUE(snap.exemplars.empty());
  EXPECT_EQ(snap.ExemplarNear(0.99), 0u);
  EXPECT_EQ(snap.ToJson().find("p99_trace"), std::string::npos);
}

TEST(HistogramTest, TracedSampleLeavesAnExemplar) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(10);  // Untraced low filler.
  SetCurrentTrace(TraceContext{0xBEEF, 0});
  for (int i = 0; i < 90; ++i) h.Record(5000);  // The traced tail.
  SetCurrentTrace(TraceContext{});
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_FALSE(snap.exemplars.empty());
  // The bucket holding the traced sample carries its trace id...
  EXPECT_EQ(snap.exemplars[Histogram::BucketIndex(5000)], 0xBEEFu);
  // ...and quantile lookups near the tail resolve to it.
  EXPECT_EQ(snap.ExemplarNear(0.99), 0xBEEFu);
  EXPECT_EQ(snap.PercentileBucket(0.99), Histogram::BucketIndex(5000));
  // The untraced bucket stays exemplar-free.
  EXPECT_EQ(snap.exemplars[Histogram::BucketIndex(10)], 0u);
}

TEST(HistogramTest, ExemplarNearWalksToTheNearestTracedBucket) {
  // p50 lands in an untraced bucket; the lookup must fall back to the
  // closest occupied bucket that does have an exemplar.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(100);
  SetCurrentTrace(TraceContext{0xF00D, 0});
  h.Record(90000);
  SetCurrentTrace(TraceContext{});
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.ExemplarNear(0.5), 0xF00Du);
}

TEST(HistogramTest, LastTracedSampleWinsTheBucket) {
  Histogram h;
  SetCurrentTrace(TraceContext{0x1, 0});
  h.Record(777);
  SetCurrentTrace(TraceContext{0x2, 0});
  h.Record(777);  // Same bucket, newer trace.
  SetCurrentTrace(TraceContext{});
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.exemplars[Histogram::BucketIndex(777)], 0x2u);
}

TEST(HistogramTest, MergePropagatesExemplars) {
  Histogram ha, hb;
  ha.Record(50);
  SetCurrentTrace(TraceContext{0xCAFE, 0});
  hb.Record(3000);
  SetCurrentTrace(TraceContext{});
  HistogramSnapshot merged = ha.Snapshot();
  merged.Merge(hb.Snapshot());
  EXPECT_EQ(merged.exemplars[Histogram::BucketIndex(3000)], 0xCAFEu);
}

TEST(HistogramTest, ToJsonHasExactMinMaxSumAndTraceJoins) {
  // The snapshot JSON reports *exact* min/max/sum/count (not bucket
  // estimates) plus the p99/max exemplar joins when traces exist.
  Histogram h;
  h.Record(17);
  SetCurrentTrace(TraceContext{0xAB, 0});
  h.Record(9001);
  SetCurrentTrace(TraceContext{});
  std::string json = h.Snapshot().ToJson();
  EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\":9018"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":17"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\":9001"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_trace\":\"00000000000000ab\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"max_trace\":\"00000000000000ab\""),
            std::string::npos)
      << json;
}

TEST(RegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter("a"), reg.counter("a"));
  EXPECT_NE(reg.counter("a"), reg.counter("b"));
  EXPECT_EQ(reg.histogram("h"), reg.histogram("h"));
}

TEST(RegistryTest, SnapshotCollectsEverything) {
  MetricsRegistry reg;
  reg.counter("x")->Add(3);
  reg.histogram("lat")->Record(10);
  auto gauge = reg.AddGauge("g", [] { return 99ull; });
  RegistrySnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("x"), 3u);
  EXPECT_EQ(snap.histograms.at("lat").count, 1u);
  EXPECT_EQ(snap.gauges.at("g"), 99u);
}

TEST(RegistryTest, SnapshotPrefixFiltersEveryKind) {
  MetricsRegistry reg;
  reg.counter("ssp.wal.appends")->Add(3);
  reg.counter("ssp.requests.GetData")->Add(9);
  reg.histogram("ssp.wal.fsync_us")->Record(120);
  reg.histogram("client.op_latency_us.read")->Record(7);
  auto g1 = reg.AddGauge("ssp.wal.segment_bytes", [] { return 11ull; });
  auto g2 = reg.AddGauge("ssp.store.objects", [] { return 5ull; });

  RegistrySnapshot snap = reg.Snapshot("ssp.wal");
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters.at("ssp.wal.appends"), 3u);
  EXPECT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms.count("ssp.wal.fsync_us"), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges.at("ssp.wal.segment_bytes"), 11u);
  // The empty prefix stays the full snapshot.
  RegistrySnapshot all = reg.Snapshot();
  EXPECT_EQ(all.counters.size(), 2u);
  EXPECT_EQ(all.histograms.size(), 2u);
  EXPECT_EQ(all.gauges.size(), 2u);
  // A prefix matching nothing yields an empty (but valid) document.
  RegistrySnapshot none = reg.Snapshot("nope.");
  EXPECT_TRUE(none.counters.empty());
  EXPECT_TRUE(none.histograms.empty());
  EXPECT_TRUE(none.gauges.empty());
  EXPECT_EQ(none.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(RegistryTest, SameNamedGaugesSum) {
  MetricsRegistry reg;
  auto g1 = reg.AddGauge("pool.size", [] { return 10ull; });
  auto g2 = reg.AddGauge("pool.size", [] { return 32ull; });
  EXPECT_EQ(reg.Snapshot().gauges.at("pool.size"), 42u);
}

TEST(RegistryTest, GaugeHandleUnregistersOnDestruction) {
  MetricsRegistry reg;
  {
    auto gauge = reg.AddGauge("ephemeral", [] { return 1ull; });
    EXPECT_EQ(reg.Snapshot().gauges.count("ephemeral"), 1u);
  }
  EXPECT_EQ(reg.Snapshot().gauges.count("ephemeral"), 0u);
}

TEST(RegistryTest, GaugeHandleMoveTransfersOwnership) {
  MetricsRegistry reg;
  MetricsRegistry::GaugeHandle outer;
  {
    auto inner = reg.AddGauge("moved", [] { return 1ull; });
    outer = std::move(inner);
  }  // inner's destructor must not unregister after the move.
  EXPECT_EQ(reg.Snapshot().gauges.count("moved"), 1u);
}

TEST(RegistryTest, JsonHasAllSections) {
  MetricsRegistry reg;
  reg.counter("ssp.requests.GetData")->Add(5);
  reg.histogram("ssp.service_us.GetData")->Record(120);
  auto gauge = reg.AddGauge("ssp.store.objects", [] { return 7ull; });
  std::string json = reg.SnapshotJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"ssp.requests.GetData\":5"), std::string::npos);
  EXPECT_NE(json.find("\"ssp.store.objects\":7"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonTest, NestedObjectsAndCommas) {
  JsonObjectWriter w;
  w.Field("a", uint64_t{1});
  w.BeginObject("b");
  w.Field("c", "x");
  w.EndObject();
  w.Field("d", true);
  EXPECT_EQ(w.Take(), "{\"a\":1,\"b\":{\"c\":\"x\"},\"d\":true}");
}

}  // namespace
}  // namespace sharoes::obs
