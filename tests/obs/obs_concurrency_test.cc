// Concurrency suite for the observability layer: counters and histograms
// hammered from many threads while snapshots race in, gauge register/
// unregister racing snapshots, and concurrent structured logging. Run
// under -DSHAROES_SANITIZE=thread — the record path claims to be
// lock-free and TSan-clean, and this is where that claim is checked.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/stress.h"

namespace sharoes::obs {
namespace {

using sharoes::testing::StressThreads;

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 2000;

TEST(ObsConcurrencyTest, CounterSumsAcrossStripes) {
  Counter c;
  StressThreads(kThreads, [&](int) -> Status {
    for (int i = 0; i < kOpsPerThread; ++i) c.Add(2);
    return Status::OK();
  });
  EXPECT_EQ(c.Value(),
            2ull * static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(ObsConcurrencyTest, HistogramRecordRacesSnapshot) {
  // Writers record while one thread snapshots continuously. Snapshots
  // must always be self-consistent (count == sum of buckets, min <= max)
  // and the final tally exact.
  Histogram h;
  StressThreads(kThreads, [&](int t) -> Status {
    if (t == 0) {
      for (int i = 0; i < 200; ++i) {
        HistogramSnapshot snap = h.Snapshot();
        uint64_t bucket_total = 0;
        for (uint64_t b : snap.buckets) bucket_total += b;
        if (snap.count != bucket_total) {
          return Status::Internal("snapshot count != bucket total");
        }
        if (snap.count > 0 && snap.min > snap.max &&
            snap.max > 0) {  // max may trail min by a racing sample.
          return Status::Internal("min > max in settled snapshot");
        }
      }
      return Status::OK();
    }
    for (int i = 0; i < kOpsPerThread; ++i) {
      h.Record(static_cast<uint64_t>(t) * 1000 + static_cast<uint64_t>(i));
    }
    return Status::OK();
  });
  HistogramSnapshot final_snap = h.Snapshot();
  EXPECT_EQ(final_snap.count,
            static_cast<uint64_t>(kThreads - 1) * kOpsPerThread);
  EXPECT_EQ(final_snap.min, 1000u);  // Thread 1, i = 0.
}

TEST(ObsConcurrencyTest, RegistryLookupsRaceRecording) {
  // Threads resolve metrics by name (registry mutex) while others record
  // through already-cached pointers.
  MetricsRegistry reg;
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < 500; ++i) {
      Counter* c = reg.counter("shared." + std::to_string(i % 7));
      c->Increment();
      if (t % 2 == 0 && i % 50 == 0) {
        (void)reg.Snapshot();
      }
    }
    return Status::OK();
  });
  RegistrySnapshot snap = reg.Snapshot();
  uint64_t total = 0;
  for (const auto& [name, v] : snap.counters) {
    (void)name;
    total += v;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kThreads) * 500);
}

TEST(ObsConcurrencyTest, GaugeLifecycleRacesSnapshot) {
  MetricsRegistry reg;
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < 200; ++i) {
      if (t % 2 == 0) {
        auto gauge =
            reg.AddGauge("churn", [] { return 1ull; });  // Dies each loop.
      } else {
        (void)reg.Snapshot();
      }
    }
    return Status::OK();
  });
  EXPECT_EQ(reg.Snapshot().gauges.count("churn"), 0u);
}

TEST(ObsConcurrencyTest, ConcurrentStructuredLogging) {
  std::atomic<uint64_t> lines{0};
  SetLogSinkForTest([&](const std::string& line) {
    if (!line.empty() && line.front() == '{' && line.back() == '}') {
      lines.fetch_add(1, std::memory_order_relaxed);
    }
  });
  SetLogRateLimit(0);  // Unlimited for this test.
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < 100; ++i) {
      Log(Severity::kWarn, "test.event",
          {{"thread", static_cast<uint64_t>(t)},
           {"i", static_cast<uint64_t>(i)}});
    }
    return Status::OK();
  });
  SetLogSinkForTest(nullptr);
  SetLogRateLimit(200);
  EXPECT_EQ(lines.load(), static_cast<uint64_t>(kThreads) * 100);
}

TEST(ObsConcurrencyTest, TraceContextIsThreadLocal) {
  // Each thread's ambient trace must be invisible to the others.
  StressThreads(kThreads, [&](int t) -> Status {
    for (int i = 0; i < 500; ++i) {
      RpcTraceScope scope;
      scope.set_attempt(static_cast<uint8_t>(t));
      TraceContext tc = CurrentTrace();
      if (tc.trace_id != scope.trace_id()) {
        return Status::Internal("foreign trace id leaked into this thread");
      }
      if (tc.attempt != static_cast<uint8_t>(t)) {
        return Status::Internal("foreign attempt leaked into this thread");
      }
    }
    if (CurrentTrace().active()) {
      return Status::Internal("trace context not restored");
    }
    return Status::OK();
  });
}

TEST(ObsConcurrencyTest, TraceIdsAreUniqueAcrossThreads) {
  std::vector<std::vector<uint64_t>> ids(kThreads);
  StressThreads(kThreads, [&](int t) -> Status {
    ids[static_cast<size_t>(t)].reserve(kOpsPerThread);
    for (int i = 0; i < kOpsPerThread; ++i) {
      ids[static_cast<size_t>(t)].push_back(NextTraceId());
    }
    return Status::OK();
  });
  std::vector<uint64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate trace id";
  EXPECT_EQ(std::count(all.begin(), all.end(), 0u), 0)
      << "zero trace id minted";
}

}  // namespace
}  // namespace sharoes::obs
