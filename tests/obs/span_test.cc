// Span timelines (obs/span.h): exclusive-phase attribution, the
// AddPhaseNs back-charge, slow-ring + slowest-table capture semantics,
// the traced-only publish rule, and the JSON renderings the kGetTraces
// RPC serves. The timing asserts are deliberately one-sided (>=) or
// framed as truncation bounds so a loaded CI machine cannot flake them.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace sharoes::obs {
namespace {

void SpinFor(std::chrono::microseconds d) {
  auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Every test starts from an empty collector and restores the slow
/// threshold it found (the collector and threshold are process-global).
class SpanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prev_threshold_ = SlowRequestThresholdUs();
    SpanCollector::Global().Reset();
  }
  void TearDown() override {
    SetSlowRequestThresholdUs(prev_threshold_);
    SpanCollector::Global().Reset();
  }
  uint64_t prev_threshold_ = 0;
};

// Attribution is exclusive: nested scopes never double-count, and the
// per-phase durations sum to the total up to one microsecond of
// truncation per phase — the property that makes a timeline trustworthy.
TEST_F(SpanTest, ExclusivePhasesSumToTotal) {
  SetSlowRequestThresholdUs(0);  // Keep the ring out of this test.
  SpanTimeline tl;
  tl.Start(NextTraceId(), "TestOp", 0, 'S');
  SpinFor(std::chrono::microseconds(300));  // Unclaimed -> kOp.
  {
    PhaseScope store(Phase::kStore);
    SpinFor(std::chrono::microseconds(300));
    {
      PhaseScope lock(Phase::kLockWait);  // Nested inside kStore.
      SpinFor(std::chrono::microseconds(300));
    }
    SpinFor(std::chrono::microseconds(300));
  }
  SpanRecord rec = tl.Finish();

  EXPECT_GE(rec.phase_us[static_cast<size_t>(Phase::kOp)], 250u);
  EXPECT_GE(rec.phase_us[static_cast<size_t>(Phase::kStore)], 500u);
  EXPECT_GE(rec.phase_us[static_cast<size_t>(Phase::kLockWait)], 250u);
  // Exclusive attribution: kStore must NOT contain kLockWait's time
  // (inclusive accounting would put >= 900us into kStore).
  EXPECT_LT(rec.phase_us[static_cast<size_t>(Phase::kStore)],
            rec.total_us);
  // The sum property, with one microsecond of truncation slack per phase.
  uint64_t sum = rec.PhaseSumUs();
  EXPECT_LE(sum, rec.total_us + 1);
  EXPECT_GE(sum + kNumPhases, rec.total_us);
  EXPECT_EQ(rec.NamedPhaseSumUs(),
            sum - rec.phase_us[static_cast<size_t>(Phase::kOp)]);
}

TEST_F(SpanTest, AddPhaseNsBackChargesAndWidensTheSpan) {
  SetSlowRequestThresholdUs(0);
  SpanTimeline tl;
  tl.Start(NextTraceId(), "TestOp", 0, 'S');
  tl.AddPhaseNs(Phase::kFrameParse, 5'000'000);  // 5ms measured pre-Start.
  SpanRecord rec = tl.Finish();
  EXPECT_GE(rec.phase_us[static_cast<size_t>(Phase::kFrameParse)], 5000u);
  EXPECT_GE(rec.total_us, 5000u);  // The back-charge widens the total...
  uint64_t sum = rec.PhaseSumUs();  // ...so the sum property still holds.
  EXPECT_LE(sum, rec.total_us + 1);
  EXPECT_GE(sum + kNumPhases, rec.total_us);
}

TEST_F(SpanTest, PhaseScopeWithoutActiveTimelineIsANoop) {
  ASSERT_FALSE(TimelineActive());
  PhaseScope scope(Phase::kWalAppend);  // Must not crash or record.
  EXPECT_FALSE(TimelineActive());
}

TEST_F(SpanTest, TracelessTimelinePublishesNothing) {
  SetSlowRequestThresholdUs(1);  // Everything would qualify as slow.
  SpanTimeline tl;
  tl.Start(/*trace_id=*/0, "TestOp", 0, 'C');
  SpinFor(std::chrono::microseconds(200));
  SpanRecord rec = tl.Finish();
  EXPECT_GE(rec.total_us, 150u);  // The record itself is still returned...
  auto snap = SpanCollector::Global().Snap();
  EXPECT_TRUE(snap.slow.empty());  // ...but nothing reached the collector.
  EXPECT_TRUE(snap.slowest.empty());
}

TEST_F(SpanTest, SlowRequestsLandInRingAndSlowestTable) {
  SetSlowRequestThresholdUs(100);
  SpanTimeline tl;
  uint64_t trace = NextTraceId();
  tl.Start(trace, "GetData", 3, 'S');
  SpinFor(std::chrono::microseconds(500));
  tl.Finish();

  auto snap = SpanCollector::Global().Snap();
  ASSERT_EQ(snap.slow.size(), 1u);
  ASSERT_EQ(snap.slowest.size(), 1u);
  const SpanRecord& rec = snap.slow[0];
  EXPECT_EQ(rec.trace_id, trace);
  EXPECT_STREQ(rec.op, "GetData");
  EXPECT_EQ(rec.attempt, 3u);
  EXPECT_EQ(rec.kind, 'S');
  EXPECT_GE(rec.total_us, 400u);
  EXPECT_GT(rec.end_unix_us, 0u);
}

TEST_F(SpanTest, FastRequestsSkipTheRing) {
  SetSlowRequestThresholdUs(60'000'000);  // Nothing is that slow here.
  SpanTimeline tl;
  tl.Start(NextTraceId(), "TestOp", 0, 'C');
  SpinFor(std::chrono::microseconds(200));  // Nonzero total_us.
  tl.Finish();
  auto snap = SpanCollector::Global().Snap();
  EXPECT_TRUE(snap.slow.empty());
  EXPECT_EQ(snap.slowest.size(), 1u);  // Slowest-ever still tracks it.
}

TEST_F(SpanTest, ZeroThresholdDisablesRingCaptureOnly) {
  SetSlowRequestThresholdUs(0);
  SpanTimeline tl;
  tl.Start(NextTraceId(), "TestOp", 0, 'C');
  SpinFor(std::chrono::microseconds(300));
  tl.Finish();
  auto snap = SpanCollector::Global().Snap();
  EXPECT_TRUE(snap.slow.empty());
  EXPECT_EQ(snap.slowest.size(), 1u);
}

TEST_F(SpanTest, SlowestTableKeepsTheHeaviestRecords) {
  SetSlowRequestThresholdUs(0);
  // Publish 3x the table size with increasing totals; the table must end
  // up holding exactly the top kSlowestSlots.
  const uint64_t n = 3 * SpanCollector::kSlowestSlots;
  for (uint64_t i = 1; i <= n; ++i) {
    SpanRecord rec;
    rec.trace_id = i;
    rec.op = "Synthetic";
    rec.kind = 'S';
    rec.total_us = i * 10;
    rec.phase_us[static_cast<size_t>(Phase::kOp)] =
        static_cast<uint32_t>(i * 10);
    SpanCollector::Global().Publish(rec);
  }
  auto snap = SpanCollector::Global().Snap();
  ASSERT_EQ(snap.slowest.size(), SpanCollector::kSlowestSlots);
  for (const SpanRecord& rec : snap.slowest) {
    EXPECT_GT(rec.total_us, (n - SpanCollector::kSlowestSlots) * 10)
        << "a light record survived in the slowest table";
  }
}

TEST_F(SpanTest, RingOverwritesOldestFirst) {
  SetSlowRequestThresholdUs(1);
  const uint64_t n = SpanCollector::kRingSlots + 5;
  for (uint64_t i = 1; i <= n; ++i) {
    SpanRecord rec;
    rec.trace_id = 1000 + i;
    rec.op = "Synthetic";
    rec.kind = 'C';
    rec.total_us = 50;
    SpanCollector::Global().Publish(rec);
  }
  auto snap = SpanCollector::Global().Snap();
  ASSERT_EQ(snap.slow.size(), SpanCollector::kRingSlots);
  for (const SpanRecord& rec : snap.slow) {
    EXPECT_GT(rec.trace_id, 1000u + 5u)
        << "an overwritten record is still visible";
  }
}

TEST_F(SpanTest, ServerSpanFramePublishesOnDestruction) {
  SetSlowRequestThresholdUs(100);
  uint64_t trace = NextTraceId();
  {
    ServerSpanFrame frame;
    ASSERT_TRUE(ServerSpanArmed());
    BeginServerSpan(trace, "PutData", 1, /*parse_ns=*/2'000'000);
    ASSERT_TRUE(TimelineActive());
    PhaseScope store(Phase::kStore);
    SpinFor(std::chrono::microseconds(400));
  }  // Frame destructor finishes + publishes.
  EXPECT_FALSE(ServerSpanArmed());
  EXPECT_FALSE(TimelineActive());
  auto snap = SpanCollector::Global().Snap();
  ASSERT_EQ(snap.slow.size(), 1u);
  const SpanRecord& rec = snap.slow[0];
  EXPECT_EQ(rec.trace_id, trace);
  EXPECT_EQ(rec.kind, 'S');
  EXPECT_GE(rec.phase_us[static_cast<size_t>(Phase::kFrameParse)], 2000u);
  EXPECT_GE(rec.phase_us[static_cast<size_t>(Phase::kStore)], 300u);
}

TEST_F(SpanTest, BeginServerSpanDeclinesWithoutAnArmedFrame) {
  BeginServerSpan(NextTraceId(), "GetData", 0, 0);  // In-process caller.
  EXPECT_FALSE(TimelineActive());
}

TEST_F(SpanTest, BeginServerSpanDeclinesWhenAClientTimelineIsActive) {
  // In-process client+server: the server phases must nest into the
  // client op's timeline instead of starting a second server span.
  SetSlowRequestThresholdUs(1);
  SpanTimeline client_tl;
  client_tl.Start(NextTraceId(), "client.read", 0, 'C');
  {
    ServerSpanFrame frame;
    BeginServerSpan(NextTraceId(), "GetData", 0, 0);
  }
  EXPECT_TRUE(TimelineActive());  // Still the client timeline.
  client_tl.Abandon();
  auto snap = SpanCollector::Global().Snap();
  EXPECT_TRUE(snap.slow.empty()) << "a nested server span was published";
}

TEST_F(SpanTest, ScopedTraceContextSetsAndRestores) {
  TraceContext before = CurrentTrace();
  {
    ScopedTraceContext scope(0xABCDu, 4);
    EXPECT_EQ(CurrentTrace().trace_id, 0xABCDu);
    EXPECT_EQ(CurrentTrace().attempt, 4u);
    {
      ScopedTraceContext inner(0x1111u, 0);  // Nested override.
      EXPECT_EQ(CurrentTrace().trace_id, 0x1111u);
    }
    EXPECT_EQ(CurrentTrace().trace_id, 0xABCDu);
  }
  EXPECT_EQ(CurrentTrace().trace_id, before.trace_id);
  // A zero trace id must be a no-op, not an override to zero.
  SetCurrentTrace(TraceContext{0x7777u, 1});
  {
    ScopedTraceContext scope(0, 9);
    EXPECT_EQ(CurrentTrace().trace_id, 0x7777u);
  }
  EXPECT_EQ(CurrentTrace().trace_id, 0x7777u);
  SetCurrentTrace(before);
}

TEST_F(SpanTest, RecordToJsonEmitsNonzeroPhasesOnly) {
  SpanRecord rec;
  rec.trace_id = 0x1234;
  rec.op = "GetData";
  rec.kind = 'S';
  rec.attempt = 2;
  rec.total_us = 150;
  rec.phase_us[static_cast<size_t>(Phase::kOp)] = 50;
  rec.phase_us[static_cast<size_t>(Phase::kFsyncWait)] = 100;
  std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"op\":\"GetData\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"server\""), std::string::npos);
  EXPECT_NE(json.find("\"attempt\":2"), std::string::npos);
  EXPECT_NE(json.find("\"fsync_wait\":100"), std::string::npos);
  EXPECT_NE(json.find("\"phase_sum_us\":150"), std::string::npos);
  EXPECT_EQ(json.find("\"wal_append\""), std::string::npos)
      << "zero phase leaked into the JSON: " << json;
}

TEST_F(SpanTest, CollectorToJsonHasThresholdAndBothArrays) {
  SetSlowRequestThresholdUs(77);
  SpanRecord rec;
  rec.trace_id = 9;
  rec.op = "Synthetic";
  rec.kind = 'C';
  rec.total_us = 100;
  SpanCollector::Global().Publish(rec);
  std::string json = SpanCollector::Global().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"slow_threshold_us\":77"), std::string::npos);
  EXPECT_NE(json.find("\"slow\":["), std::string::npos);
  EXPECT_NE(json.find("\"slowest\":["), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"Synthetic\""), std::string::npos);
}

TEST_F(SpanTest, ResetClearsBothTables) {
  SetSlowRequestThresholdUs(1);
  SpanRecord rec;
  rec.trace_id = 5;
  rec.op = "Synthetic";
  rec.total_us = 100;
  SpanCollector::Global().Publish(rec);
  ASSERT_FALSE(SpanCollector::Global().Snap().slow.empty());
  SpanCollector::Global().Reset();
  auto snap = SpanCollector::Global().Snap();
  EXPECT_TRUE(snap.slow.empty());
  EXPECT_TRUE(snap.slowest.empty());
  // And the slowest table accepts light records again post-reset (its
  // claim values were cleared, not just the visible words).
  SpanRecord light;
  light.trace_id = 6;
  light.op = "Synthetic";
  light.total_us = 1;
  SpanCollector::Global().Publish(light);
  EXPECT_EQ(SpanCollector::Global().Snap().slowest.size(), 1u);
}

}  // namespace
}  // namespace sharoes::obs
