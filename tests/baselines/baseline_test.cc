// Functional tests of the four comparison systems (paper §V): they must
// behave as working (if weaker-model) filesystems so the benchmark
// differences come from their security design, not from bugs.

#include <gtest/gtest.h>

#include "baselines/baseline.h"
#include "net/network_model.h"

namespace sharoes::baselines {
namespace {

constexpr fs::UserId kUser = 100;
constexpr fs::UserId kOther = 101;

class BaselineWorld {
 public:
  explicit BaselineWorld(SecurityMode mode) {
    crypto::CryptoEngineOptions eo;
    eo.cost_model = crypto::CryptoCostModel::Zero();
    eo.signing_key_bits = 512;
    eo.rng_seed = 808;
    engine_ = std::make_unique<crypto::CryptoEngine>(&clock_, eo);
    for (fs::UserId uid : {kUser, kOther}) {
      crypto::RsaKeyPair kp = engine_->NewUserKeyPair(512);
      core::UserInfo info;
      info.id = uid;
      info.name = "u" + std::to_string(uid);
      info.public_key = kp.pub;
      keys_[uid] = kp.priv;
      Status s = identity_.AddUser(std::move(info));
      (void)s;
    }
    BaselineOptions opts;
    opts.mode = mode;
    options_ = opts;
    core::LocalNode root = core::LocalNode::Dir(
        "", kUser, fs::kInvalidGroup, fs::Mode::FromOctal(0755));
    core::LocalNode docs = core::LocalNode::Dir(
        "docs", kUser, fs::kInvalidGroup, fs::Mode::FromOctal(0755));
    docs.children.push_back(core::LocalNode::File(
        "a.txt", kUser, fs::kInvalidGroup, fs::Mode::FromOctal(0644),
        ToBytes("contents of a")));
    docs.children.push_back(core::LocalNode::File(
        "private.txt", kUser, fs::kInvalidGroup, fs::Mode::FromOctal(0600),
        ToBytes("private")));
    root.children.push_back(std::move(docs));
    BaselineProvisioner prov(&identity_, &server_, engine_.get(), opts);
    Status s = prov.Migrate(root);
    assert(s.ok());
    (void)s;
  }

  BaselineClient MakeClient(fs::UserId uid) {
    transports_.push_back(std::make_unique<net::Transport>(
        &clock_, net::NetworkModel::Zero()));
    conns_.push_back(std::make_unique<ssp::SspConnection>(
        &server_, transports_.back().get()));
    return BaselineClient(uid, keys_.at(uid), &identity_,
                          conns_.back().get(), engine_.get(), options_);
  }

  ssp::SspServer& server() { return server_; }

 private:
  SimClock clock_;
  std::unique_ptr<crypto::CryptoEngine> engine_;
  core::IdentityDirectory identity_;
  ssp::SspServer server_;
  BaselineOptions options_;
  std::map<fs::UserId, crypto::RsaPrivateKey> keys_;
  std::vector<std::unique_ptr<net::Transport>> transports_;
  std::vector<std::unique_ptr<ssp::SspConnection>> conns_;
};

class BaselineModeTest : public ::testing::TestWithParam<SecurityMode> {};

TEST_P(BaselineModeTest, MountStatReadWork) {
  BaselineWorld world(GetParam());
  BaselineClient client = world.MakeClient(kUser);
  ASSERT_TRUE(client.Mount().ok());
  auto attrs = client.Getattr("/docs/a.txt");
  ASSERT_TRUE(attrs.ok()) << attrs.status();
  EXPECT_EQ(attrs->owner, kUser);
  EXPECT_EQ(attrs->mode.bits(), 0644);
  auto read = client.Read("/docs/a.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "contents of a");
}

TEST_P(BaselineModeTest, CreateWriteReadRoundTrip) {
  BaselineWorld world(GetParam());
  BaselineClient client = world.MakeClient(kUser);
  ASSERT_TRUE(client.Mount().ok());
  core::CreateOptions opts;
  opts.mode = fs::Mode::FromOctal(0644);
  ASSERT_TRUE(client.Create("/docs/new.txt", opts).ok());
  ASSERT_TRUE(client.WriteFile("/docs/new.txt", ToBytes("fresh")).ok());
  client.DropCaches();
  auto read = client.Read("/docs/new.txt");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(ToString(*read), "fresh");
}

TEST_P(BaselineModeTest, MkdirReaddirUnlink) {
  BaselineWorld world(GetParam());
  BaselineClient client = world.MakeClient(kUser);
  ASSERT_TRUE(client.Mount().ok());
  core::CreateOptions dopts;
  dopts.mode = fs::Mode::FromOctal(0755);
  ASSERT_TRUE(client.Mkdir("/docs/sub", dopts).ok());
  auto names = client.Readdir("/docs");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 3u);
  EXPECT_TRUE(client.Rmdir("/docs/sub").ok());
  ASSERT_TRUE(client.Unlink("/docs/a.txt").ok());
  EXPECT_FALSE(client.Exists("/docs/a.txt"));
}

TEST_P(BaselineModeTest, MultiBlockFile) {
  BaselineWorld world(GetParam());
  BaselineClient client = world.MakeClient(kUser);
  ASSERT_TRUE(client.Mount().ok());
  core::CreateOptions opts;
  opts.mode = fs::Mode::FromOctal(0644);
  ASSERT_TRUE(client.Create("/docs/big", opts).ok());
  Rng rng(17);
  Bytes big = rng.NextBytes(15000);
  ASSERT_TRUE(client.WriteFile("/docs/big", big).ok());
  client.DropCaches();
  auto read = client.Read("/docs/big");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, big);
}

TEST_P(BaselineModeTest, FileLevelPermissionChecks) {
  BaselineWorld world(GetParam());
  BaselineClient other = world.MakeClient(kOther);
  ASSERT_TRUE(other.Mount().ok());
  // 0644: readable, not writable by others.
  ASSERT_TRUE(other.Read("/docs/a.txt").ok());
  EXPECT_FALSE(other.Write("/docs/a.txt", ToBytes("x")).ok());
  // 0600: unreadable by others (client-side check in baselines).
  EXPECT_FALSE(other.Read("/docs/private.txt").ok());
  // chmod is owner-only.
  EXPECT_FALSE(other.Chmod("/docs/a.txt", fs::Mode::FromOctal(0666)).ok());
}

TEST_P(BaselineModeTest, ChmodByOwnerChangesAttrs) {
  BaselineWorld world(GetParam());
  BaselineClient client = world.MakeClient(kUser);
  ASSERT_TRUE(client.Mount().ok());
  ASSERT_TRUE(client.Chmod("/docs/a.txt", fs::Mode::FromOctal(0600)).ok());
  BaselineClient other = world.MakeClient(kOther);
  ASSERT_TRUE(other.Mount().ok());
  EXPECT_FALSE(other.Read("/docs/a.txt").ok());
}

INSTANTIATE_TEST_SUITE_P(AllModes, BaselineModeTest,
                         ::testing::Values(SecurityMode::kNoEncMdD,
                                           SecurityMode::kNoEncMd,
                                           SecurityMode::kPublic,
                                           SecurityMode::kPubOpt),
                         [](const auto& info) {
                           std::string name = SecurityModeName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out.push_back(c);
                             }
                           }
                           return out;
                         });

TEST(BaselineStorageTest, EncryptedModesActuallyEncrypt) {
  // The plaintext "contents of a" must appear in the SSP store only for
  // NO-ENC-MD-D.
  auto contains = [](const Bytes& haystack, const std::string& needle) {
    return std::search(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end()) != haystack.end();
  };
  for (SecurityMode mode :
       {SecurityMode::kNoEncMdD, SecurityMode::kNoEncMd,
        SecurityMode::kPublic, SecurityMode::kPubOpt}) {
    BaselineWorld world(mode);
    // File data lives at (inode of a.txt, block 1); inode 3 by creation
    // order (root=1, docs=2, a.txt=3).
    auto blob = world.server().store().GetData(3, 1);
    ASSERT_TRUE(blob.has_value()) << SecurityModeName(mode);
    EXPECT_EQ(contains(*blob, "contents of a"),
              mode == SecurityMode::kNoEncMdD)
        << SecurityModeName(mode);
  }
}

TEST(BaselineStorageTest, PublicModeStoresPerUserCopies) {
  BaselineWorld world(SecurityMode::kPublic);
  // No shared metadata object; per-user copies instead.
  EXPECT_FALSE(world.server().store().GetMetadata(3, 0).has_value());
  EXPECT_TRUE(world.server().store().GetUserMetadata(3, kUser).has_value());
  EXPECT_TRUE(world.server().store().GetUserMetadata(3, kOther).has_value());
}

TEST(BaselineStorageTest, PubOptStoresSealedRecordPlusWrappedKeys) {
  BaselineWorld world(SecurityMode::kPubOpt);
  EXPECT_TRUE(world.server().store().GetMetadata(3, 0).has_value());
  EXPECT_TRUE(world.server().store().GetUserMetadata(3, kUser).has_value());
}

TEST(BaselineRecordTest, SerializationRoundTrip) {
  BaselineRecord rec;
  rec.attrs.inode = 9;
  rec.attrs.owner = 1;
  rec.attrs.mode = fs::Mode::FromOctal(0640);
  rec.dek = Bytes(16, 7);
  rec.signing_material = Bytes(100, 0x5A);
  auto back = BaselineRecord::Deserialize(rec.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->attrs, rec.attrs);
  EXPECT_EQ(back->dek, rec.dek);
  EXPECT_EQ(back->signing_material, rec.signing_material);
  EXPECT_FALSE(BaselineRecord::Deserialize(ToBytes("junk")).ok());
}

}  // namespace
}  // namespace sharoes::baselines
