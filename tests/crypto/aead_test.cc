// AES-128-GCM tests: NIST GCM known-answer vectors, seal/open round
// trips, tamper detection, and byte-for-byte agreement between the
// portable implementation and the AES-NI/CLMUL fast path.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "crypto/aead.h"
#include "util/random.h"

namespace sharoes::crypto {
namespace {

Bytes Hex(const std::string& s) {
  bool ok = false;
  Bytes b = HexDecode(s, &ok);
  EXPECT_TRUE(ok) << s;
  return b;
}

/// Runs `fn` once per implementation available on this machine, pinning
/// the dispatcher each time (at least the portable one always runs).
void ForEachImpl(const std::function<void(AeadImpl)>& fn) {
  std::vector<AeadImpl> impls = {AeadImpl::kPortable};
  if (AesAccelAvailable()) impls.push_back(AeadImpl::kAccelerated);
  for (AeadImpl impl : impls) {
    ForceAeadImpl(impl);
    ASSERT_EQ(ActiveAeadImpl(), impl);
    fn(impl);
  }
  ResetAeadImpl();
}

// NIST GCM spec test cases 1-4 (AES-128).
struct Kat {
  const char* key;
  const char* iv;
  const char* aad;
  const char* pt;
  const char* ct;
  const char* tag;
};
const Kat kNistKats[] = {
    // Test Case 1: empty plaintext, empty AAD.
    {"00000000000000000000000000000000", "000000000000000000000000", "", "",
     "", "58e2fccefa7e3061367f1d57a4e7455a"},
    // Test Case 2: one zero block.
    {"00000000000000000000000000000000", "000000000000000000000000", "",
     "00000000000000000000000000000000", "0388dace60b6a392f328c2b971b2fe78",
     "ab6e47d42cec13bdf53a67b21257bddf"},
    // Test Case 3: four blocks.
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888", "",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
     "4d5c2af327cd64a62cf35abd2ba6fab4"},
    // Test Case 4: 60-byte plaintext + 20-byte AAD (unaligned tails).
    {"feffe9928665731c6d6a8f9467308308", "cafebabefacedbaddecaf888",
     "feedfacedeadbeeffeedfacedeadbeefabaddad2",
     "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
     "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
     "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
     "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
     "5bc94fbc3221a5db94fae95ae7121a47"},
};

TEST(AeadTest, NistKnownAnswerVectors) {
  ForEachImpl([&](AeadImpl impl) {
    for (const Kat& kat : kNistKats) {
      Bytes key = Hex(kat.key), iv = Hex(kat.iv), aad = Hex(kat.aad);
      Bytes pt = Hex(kat.pt);
      Bytes tag;
      Bytes ct = GcmSeal(key, iv, aad, pt, &tag);
      EXPECT_EQ(ct, Hex(kat.ct)) << AeadImplName(impl);
      EXPECT_EQ(tag, Hex(kat.tag)) << AeadImplName(impl);
      Result<Bytes> back = GcmOpen(key, iv, aad, ct, tag);
      ASSERT_TRUE(back.ok()) << AeadImplName(impl);
      EXPECT_EQ(*back, pt);
    }
  });
}

TEST(AeadTest, RoundTripAcrossSizes) {
  ForEachImpl([&](AeadImpl impl) {
    Rng rng(0xA0 + static_cast<int>(impl));
    for (size_t len : {0u, 1u, 15u, 16u, 17u, 63u, 64u, 65u, 255u, 4096u,
                       4097u}) {
      Bytes key = rng.NextBytes(16);
      Bytes nonce = rng.NextBytes(kAeadNonceSize);
      Bytes aad = rng.NextBytes(len % 37);
      Bytes pt = rng.NextBytes(len);
      Bytes tag;
      Bytes ct = GcmSeal(key, nonce, aad, pt, &tag);
      EXPECT_EQ(ct.size(), pt.size());
      EXPECT_EQ(tag.size(), kAeadTagSize);
      Result<Bytes> back = GcmOpen(key, nonce, aad, ct, tag);
      ASSERT_TRUE(back.ok()) << AeadImplName(impl) << " len " << len;
      EXPECT_EQ(*back, pt);
    }
  });
}

TEST(AeadTest, TamperAnywhereFailsClosed) {
  ForEachImpl([&](AeadImpl impl) {
    Rng rng(0xB0 + static_cast<int>(impl));
    Bytes key = rng.NextBytes(16);
    Bytes nonce = rng.NextBytes(kAeadNonceSize);
    Bytes aad = rng.NextBytes(13);
    Bytes pt = rng.NextBytes(100);
    Bytes tag;
    Bytes ct = GcmSeal(key, nonce, aad, pt, &tag);
    for (size_t i = 0; i < ct.size(); ++i) {
      Bytes bad = ct;
      bad[i] ^= 1;
      EXPECT_TRUE(GcmOpen(key, nonce, aad, bad, tag).status().IsCorruption())
          << "ct byte " << i;
    }
    for (size_t i = 0; i < tag.size(); ++i) {
      Bytes bad = tag;
      bad[i] ^= 1;
      EXPECT_TRUE(GcmOpen(key, nonce, aad, ct, bad).status().IsCorruption())
          << "tag byte " << i;
    }
    for (size_t i = 0; i < aad.size(); ++i) {
      Bytes bad = aad;
      bad[i] ^= 1;
      EXPECT_TRUE(GcmOpen(key, nonce, bad, ct, tag).status().IsCorruption())
          << "aad byte " << i;
    }
    for (size_t i = 0; i < nonce.size(); ++i) {
      Bytes bad = nonce;
      bad[i] ^= 1;
      EXPECT_TRUE(GcmOpen(key, bad, aad, ct, tag).status().IsCorruption())
          << "nonce byte " << i;
    }
  });
}

TEST(AeadTest, MalformedNonceOrTagIsCryptoError) {
  Bytes key(16, 1);
  Bytes nonce(kAeadNonceSize, 2);
  Bytes tag;
  Bytes ct = GcmSeal(key, nonce, {}, Bytes(8, 3), &tag);
  EXPECT_TRUE(GcmOpen(key, Bytes(11, 2), {}, ct, tag)
                  .status()
                  .IsCryptoError());
  EXPECT_TRUE(
      GcmOpen(key, nonce, {}, ct, Bytes(15, 0)).status().IsCryptoError());
}

TEST(AeadTest, PortableAndAcceleratedAgreeByteForByte) {
  if (!AesAccelAvailable()) {
    GTEST_SKIP() << "CPU lacks AES-NI/PCLMUL; cross-check not possible";
  }
  Rng rng(0xC3);
  for (int i = 0; i < 200; ++i) {
    Bytes key = rng.NextBytes(16);
    Bytes nonce = rng.NextBytes(kAeadNonceSize);
    Bytes aad = rng.NextBytes(rng.NextU64() % 64);
    Bytes pt = rng.NextBytes(rng.NextU64() % 8192);
    ForceAeadImpl(AeadImpl::kPortable);
    Bytes tag_p;
    Bytes ct_p = GcmSeal(key, nonce, aad, pt, &tag_p);
    ForceAeadImpl(AeadImpl::kAccelerated);
    Bytes tag_a;
    Bytes ct_a = GcmSeal(key, nonce, aad, pt, &tag_a);
    ASSERT_EQ(ct_p, ct_a) << "iteration " << i;
    ASSERT_EQ(tag_p, tag_a) << "iteration " << i;
    // Cross-open: sealed by one implementation, opened by the other.
    ForceAeadImpl(AeadImpl::kPortable);
    auto back_p = GcmOpen(key, nonce, aad, ct_a, tag_a);
    ForceAeadImpl(AeadImpl::kAccelerated);
    auto back_a = GcmOpen(key, nonce, aad, ct_p, tag_p);
    ASSERT_TRUE(back_p.ok() && back_a.ok());
    EXPECT_EQ(*back_p, pt);
    EXPECT_EQ(*back_a, pt);
  }
  ResetAeadImpl();
}

TEST(AeadTest, ForceRespectsHardwareLimits) {
  ResetAeadImpl();
  AeadImpl native = ActiveAeadImpl();
  ForceAeadImpl(AeadImpl::kPortable);
  EXPECT_EQ(ActiveAeadImpl(), AeadImpl::kPortable);
  ForceAeadImpl(AeadImpl::kAccelerated);
  // Granted only when the CPU can actually run it.
  EXPECT_EQ(ActiveAeadImpl(), AesAccelAvailable() ? AeadImpl::kAccelerated
                                                  : AeadImpl::kPortable);
  ResetAeadImpl();
  EXPECT_EQ(ActiveAeadImpl(), native);
}

}  // namespace
}  // namespace sharoes::crypto
