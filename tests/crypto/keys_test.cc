#include "crypto/keys.h"

#include <gtest/gtest.h>

#include "crypto/kdf.h"
#include "util/sim_clock.h"

namespace sharoes::crypto {
namespace {

CryptoEngineOptions FastOptions() {
  CryptoEngineOptions o;
  o.signing_key_bits = 512;
  o.rng_seed = 42;
  return o;
}

TEST(CryptoEngineTest, SymmetricRoundTrip) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  SymmetricKey key = eng.NewSymmetricKey();
  Bytes pt = ToBytes("a data block");
  Bytes sealed = eng.SymEncrypt(key, pt);
  auto back = eng.SymDecrypt(key, sealed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
}

TEST(CryptoEngineTest, SymmetricChargesCryptoCost) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  SymmetricKey key = eng.NewSymmetricKey();
  uint64_t before = clock.snapshot().crypto_ns();
  eng.SymEncrypt(key, Bytes(1 << 20, 0));  // 1 MiB
  uint64_t delta = clock.snapshot().crypto_ns() - before;
  // 1 MiB at 40 MB/s ~ 26 ms.
  EXPECT_GT(delta, 20ull * 1000 * 1000);
  EXPECT_LT(delta, 40ull * 1000 * 1000);
}

TEST(CryptoEngineTest, ZeroCostModelChargesNothing) {
  SimClock clock;
  CryptoEngineOptions o = FastOptions();
  o.cost_model = CryptoCostModel::Zero();
  CryptoEngine eng(&clock, o);
  SymmetricKey key = eng.NewSymmetricKey();
  eng.SymEncrypt(key, Bytes(4096, 1));
  auto pair = eng.NewSigningKeyPair();
  eng.Sign(pair.sign, ToBytes("x"));
  EXPECT_EQ(clock.snapshot().crypto_ns(), 0u);
}

TEST(CryptoEngineTest, SignVerify) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  SigningKeyPair pair = eng.NewSigningKeyPair();
  Bytes msg = ToBytes("metadata bytes");
  Bytes sig = eng.Sign(pair.sign, msg);
  EXPECT_TRUE(eng.Verify(pair.verify, msg, sig));
  EXPECT_FALSE(eng.Verify(pair.verify, ToBytes("other"), sig));
}

TEST(CryptoEngineTest, SignChargesEsignCalibratedCost) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  SigningKeyPair pair = eng.NewSigningKeyPair();
  uint64_t before = clock.snapshot().crypto_ns();
  eng.Sign(pair.sign, ToBytes("m"));
  uint64_t delta = clock.snapshot().crypto_ns() - before;
  EXPECT_EQ(delta, 2ull * 1000 * 1000);  // sign_ms = 2.
}

TEST(CryptoEngineTest, PkRoundTripAndCost) {
  SimClock clock;
  CryptoEngineOptions o = FastOptions();
  CryptoEngine eng(&clock, o);
  RsaKeyPair user = eng.NewUserKeyPair(512);
  Bytes msg = ToBytes("the superblock");
  uint64_t before = clock.snapshot().crypto_ns();
  auto ct = eng.PkEncrypt(user.pub, msg);
  ASSERT_TRUE(ct.ok());
  uint64_t enc_cost = clock.snapshot().crypto_ns() - before;
  EXPECT_EQ(enc_cost, 15ull * 1000 * 1000);  // One block at 15 ms.

  before = clock.snapshot().crypto_ns();
  auto pt = eng.PkDecrypt(user.priv, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
  uint64_t dec_cost = clock.snapshot().crypto_ns() - before;
  EXPECT_EQ(dec_cost, 270ull * 1000 * 1000);  // One block at 270 ms.
}

TEST(CryptoEngineTest, MultiBlockPkCostScalesWithBlocks) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  RsaKeyPair user = eng.NewUserKeyPair(512);
  size_t chunk = user.pub.MaxMessageBytes();
  Bytes msg(3 * chunk + 1, 0x5A);  // 4 blocks.
  uint64_t before = clock.snapshot().crypto_ns();
  auto ct = eng.PkEncrypt(user.pub, msg);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(clock.snapshot().crypto_ns() - before, 4 * 15ull * 1000 * 1000);
}

TEST(CryptoEngineTest, DeriveNameKeyMatchesKdfAndIsStable) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  SymmetricKey dek = eng.NewSymmetricKey();
  SymmetricKey k1 = eng.DeriveNameKey(dek, "report.txt");
  SymmetricKey k2 = kdf::DeriveNameKey(dek, "report.txt");
  EXPECT_EQ(k1, k2);
  EXPECT_NE(eng.DeriveNameKey(dek, "a").key, eng.DeriveNameKey(dek, "b").key);
}

TEST(CryptoEngineTest, SigningKeyPoolCyclesDistinctKeys) {
  SimClock clock;
  CryptoEngineOptions o = FastOptions();
  o.signing_key_pool = 2;
  CryptoEngine eng(&clock, o);
  auto a = eng.NewSigningKeyPair();
  auto b = eng.NewSigningKeyPair();
  auto c = eng.NewSigningKeyPair();  // Recycles a.
  EXPECT_FALSE(a.verify == b.verify);
  EXPECT_TRUE(c.verify == a.verify);
}

TEST(CryptoEngineTest, OpCountsTrackUsage) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  SymmetricKey key = eng.NewSymmetricKey();
  Bytes sealed = eng.SymEncrypt(key, ToBytes("x"));
  ASSERT_TRUE(eng.SymDecrypt(key, sealed).ok());
  EXPECT_EQ(eng.op_counts().sym_encrypt, 1u);
  EXPECT_EQ(eng.op_counts().sym_decrypt, 1u);
  eng.ResetOpCounts();
  EXPECT_EQ(eng.op_counts().sym_encrypt, 0u);
}

TEST(CryptoEngineTest, DeterministicWithSeed) {
  SimClock c1, c2;
  CryptoEngine e1(&c1, FastOptions());
  CryptoEngine e2(&c2, FastOptions());
  EXPECT_EQ(e1.NewSymmetricKey().key, e2.NewSymmetricKey().key);
}

TEST(CryptoEngineTest, MeasuredModeChargesWallClock) {
  SimClock clock;
  CryptoEngineOptions o = FastOptions();
  o.charge_policy = ChargePolicy::kMeasured;
  CryptoEngine eng(&clock, o);
  SymmetricKey key = eng.NewSymmetricKey();
  eng.SymEncrypt(key, Bytes(1 << 16, 0));
  // Real AES of 64 KiB takes *some* time, far below the calibrated price.
  EXPECT_GT(clock.snapshot().crypto_ns(), 0u);
  EXPECT_LT(clock.snapshot().crypto_ns(), 1ull * 1000 * 1000 * 1000);
}

TEST(KeyTypesTest, SerializeDeserialize) {
  SimClock clock;
  CryptoEngine eng(&clock, FastOptions());
  SymmetricKey sk = eng.NewSymmetricKey();
  auto sk2 = SymmetricKey::Deserialize(sk.Serialize());
  ASSERT_TRUE(sk2.ok());
  EXPECT_EQ(*sk2, sk);
  EXPECT_FALSE(SymmetricKey::Deserialize(ToBytes("short")).ok());

  SigningKeyPair pair = eng.NewSigningKeyPair();
  auto vk = VerifyKey::Deserialize(pair.verify.Serialize());
  ASSERT_TRUE(vk.ok());
  EXPECT_TRUE(*vk == pair.verify);
  auto sg = SigningKey::Deserialize(pair.sign.Serialize());
  ASSERT_TRUE(sg.ok());
  Bytes sig = eng.Sign(*sg, ToBytes("m"));
  EXPECT_TRUE(eng.Verify(pair.verify, ToBytes("m"), sig));
}

}  // namespace
}  // namespace sharoes::crypto
