#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace sharoes::crypto {
namespace {

// Key generation is the slow part; share one pair across the suite.
class RsaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new Rng(0xC0FFEE);
    key_ = new RsaKeyPair(GenerateRsaKeyPair(768, *rng_));
  }
  static void TearDownTestSuite() {
    delete key_;
    delete rng_;
    key_ = nullptr;
    rng_ = nullptr;
  }

  static Rng* rng_;
  static RsaKeyPair* key_;
};

Rng* RsaTest::rng_ = nullptr;
RsaKeyPair* RsaTest::key_ = nullptr;

TEST_F(RsaTest, KeyStructure) {
  EXPECT_EQ(key_->pub.n.BitLength(), 768u);
  EXPECT_EQ(key_->pub.e.ToU64(), 65537u);
  EXPECT_EQ(BigInt::Mul(key_->priv.p, key_->priv.q), key_->priv.n);
}

TEST_F(RsaTest, EncryptDecryptBlockRoundTrip) {
  Bytes msg = ToBytes("superblock for alice");
  auto ct = RsaEncryptBlock(key_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size(), key_->pub.ModulusBytes());
  auto pt = RsaDecryptBlock(key_->priv, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, EncryptionIsRandomized) {
  Bytes msg = ToBytes("same message");
  auto c1 = RsaEncryptBlock(key_->pub, msg, *rng_);
  auto c2 = RsaEncryptBlock(key_->pub, msg, *rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);
}

TEST_F(RsaTest, RejectsOversizedBlockMessage) {
  Bytes msg(key_->pub.MaxMessageBytes() + 1, 0x41);
  auto ct = RsaEncryptBlock(key_->pub, msg, *rng_);
  EXPECT_FALSE(ct.ok());
  EXPECT_EQ(ct.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(RsaTest, MaxSizeBlockMessage) {
  Bytes msg(key_->pub.MaxMessageBytes(), 0x42);
  auto ct = RsaEncryptBlock(key_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecryptBlock(key_->priv, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, EmptyMessage) {
  auto ct = RsaEncrypt(key_->pub, Bytes{}, *rng_);
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecrypt(key_->priv, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_TRUE(pt->empty());
}

TEST_F(RsaTest, MultiBlockRoundTrip) {
  // Larger than one block: the PUBLIC-baseline metadata path.
  Bytes msg;
  for (int i = 0; i < 500; ++i) msg.push_back(static_cast<uint8_t>(i));
  auto ct = RsaEncrypt(key_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  EXPECT_EQ(ct->size() % key_->pub.ModulusBytes(), 0u);
  EXPECT_EQ(ct->size() / key_->pub.ModulusBytes(),
            RsaBlockCount(key_->pub, msg.size()));
  auto pt = RsaDecrypt(key_->priv, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, DecryptRejectsTamperedBlock) {
  Bytes msg = ToBytes("tamper me");
  auto ct = RsaEncryptBlock(key_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  Bytes bad = *ct;
  bad[bad.size() / 2] ^= 0xFF;
  auto pt = RsaDecryptBlock(key_->priv, bad);
  // Either padding fails or the plaintext differs; both are acceptable
  // detections for PKCS#1 v1.5.
  if (pt.ok()) {
    EXPECT_NE(*pt, msg);
  }
}

TEST_F(RsaTest, DecryptRejectsWrongSize) {
  Bytes short_ct(key_->pub.ModulusBytes() - 1, 0);
  EXPECT_FALSE(RsaDecryptBlock(key_->priv, short_ct).ok());
}

TEST_F(RsaTest, SignVerifyRoundTrip) {
  Bytes msg = ToBytes("hash of file contents");
  Bytes sig = RsaSign(key_->priv, msg);
  EXPECT_TRUE(RsaVerify(key_->pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsModifiedMessage) {
  Bytes msg = ToBytes("original");
  Bytes sig = RsaSign(key_->priv, msg);
  EXPECT_FALSE(RsaVerify(key_->pub, ToBytes("0riginal"), sig));
}

TEST_F(RsaTest, VerifyRejectsModifiedSignature) {
  Bytes msg = ToBytes("message");
  Bytes sig = RsaSign(key_->priv, msg);
  sig[0] ^= 1;
  EXPECT_FALSE(RsaVerify(key_->pub, msg, sig));
}

TEST_F(RsaTest, VerifyRejectsWrongKey) {
  Rng rng2(999);
  RsaKeyPair other = GenerateRsaKeyPair(768, rng2);
  Bytes msg = ToBytes("message");
  Bytes sig = RsaSign(key_->priv, msg);
  EXPECT_FALSE(RsaVerify(other.pub, msg, sig));
}

TEST_F(RsaTest, PublicKeySerializationRoundTrip) {
  Bytes ser = key_->pub.Serialize();
  auto back = RsaPublicKey::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->n, key_->pub.n);
  EXPECT_EQ(back->e, key_->pub.e);
}

TEST_F(RsaTest, PrivateKeySerializationRoundTrip) {
  Bytes ser = key_->priv.Serialize();
  auto back = RsaPrivateKey::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->d, key_->priv.d);
  EXPECT_EQ(back->qinv, key_->priv.qinv);
  // The deserialized key must actually work.
  Bytes msg = ToBytes("round trip");
  auto ct = RsaEncryptBlock(key_->pub, msg, *rng_);
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecryptBlock(*back, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
}

TEST_F(RsaTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RsaPublicKey::Deserialize(ToBytes("junk")).ok());
  EXPECT_FALSE(RsaPrivateKey::Deserialize(ToBytes("junk")).ok());
}

TEST_F(RsaTest, FingerprintStableAndDistinct) {
  EXPECT_EQ(key_->pub.Fingerprint(), key_->pub.Fingerprint());
  Rng rng2(1234);
  RsaKeyPair other = GenerateRsaKeyPair(512, rng2);
  EXPECT_NE(key_->pub.Fingerprint(), other.pub.Fingerprint());
}

TEST(RsaSmallKeyTest, Various512BitKeys) {
  Rng rng(77);
  for (int i = 0; i < 3; ++i) {
    RsaKeyPair kp = GenerateRsaKeyPair(512, rng);
    Bytes msg = ToBytes("msg");
    auto ct = RsaEncryptBlock(kp.pub, msg, rng);
    ASSERT_TRUE(ct.ok());
    auto pt = RsaDecryptBlock(kp.priv, *ct);
    ASSERT_TRUE(pt.ok());
    EXPECT_EQ(*pt, msg);
    Bytes sig = RsaSign(kp.priv, msg);
    EXPECT_TRUE(RsaVerify(kp.pub, msg, sig));
  }
}

}  // namespace
}  // namespace sharoes::crypto
