#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace sharoes::crypto {
namespace {

TEST(BigIntTest, ConstructionAndBasics) {
  BigInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.BitLength(), 0u);
  BigInt one(1);
  EXPECT_TRUE(one.IsOne());
  EXPECT_TRUE(one.IsOdd());
  BigInt big(0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(big.ToU64(), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(big.BitLength(), 64u);
}

TEST(BigIntTest, HexRoundTrip) {
  const char* cases[] = {"0", "1", "ff", "100", "deadbeef",
                         "123456789abcdef0123456789abcdef"};
  for (const char* c : cases) {
    BigInt x;
    ASSERT_TRUE(BigInt::FromHex(c, &x));
    EXPECT_EQ(x.ToHex(), c);
  }
}

TEST(BigIntTest, FromHexRejectsGarbage) {
  BigInt x;
  EXPECT_FALSE(BigInt::FromHex("xyz", &x));
  EXPECT_FALSE(BigInt::FromHex("12g4", &x));
}

TEST(BigIntTest, BytesRoundTrip) {
  Rng rng(1);
  for (size_t len : {1u, 4u, 5u, 16u, 31u, 32u, 100u, 256u}) {
    Bytes b = rng.NextBytes(len);
    b[0] |= 1;  // Avoid a leading zero so lengths match.
    BigInt x = BigInt::FromBytes(b);
    EXPECT_EQ(x.ToBytes(len), b) << "len " << len;
  }
}

TEST(BigIntTest, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::RandomWithBits(1 + rng.NextBelow(256), rng);
    BigInt b = BigInt::RandomWithBits(1 + rng.NextBelow(256), rng);
    BigInt sum = BigInt::Add(a, b);
    EXPECT_EQ(BigInt::Sub(sum, b), a);
    EXPECT_EQ(BigInt::Sub(sum, a), b);
  }
}

TEST(BigIntTest, MulMatchesU64) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.NextU64() >> 33;  // Keep the product within 64 bits.
    uint64_t b = rng.NextU64() >> 33;
    EXPECT_EQ(BigInt::Mul(BigInt(a), BigInt(b)).ToU64(), a * b);
  }
}

TEST(BigIntTest, MulCommutativeAndDistributive) {
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::RandomWithBits(200, rng);
    BigInt b = BigInt::RandomWithBits(150, rng);
    BigInt c = BigInt::RandomWithBits(100, rng);
    EXPECT_EQ(BigInt::Mul(a, b), BigInt::Mul(b, a));
    // a*(b+c) == a*b + a*c
    EXPECT_EQ(BigInt::Mul(a, BigInt::Add(b, c)),
              BigInt::Add(BigInt::Mul(a, b), BigInt::Mul(a, c)));
  }
}

TEST(BigIntTest, DivModReconstruction) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    size_t abits = 1 + rng.NextBelow(512);
    size_t bbits = 1 + rng.NextBelow(300);
    BigInt a = BigInt::RandomWithBits(abits, rng);
    BigInt b = BigInt::RandomWithBits(bbits, rng);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    EXPECT_LT(r.Compare(b), 0);
    EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a)
        << "a=" << a.ToHex() << " b=" << b.ToHex();
  }
}

TEST(BigIntTest, DivModSmallDivisor) {
  BigInt a = BigInt::FromHexUnchecked("123456789abcdef0fedcba9876543210");
  BigInt q, r;
  BigInt::DivMod(a, BigInt(7), &q, &r);
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q, BigInt(7)), r), a);
  EXPECT_LT(r.ToU64(), 7u);
}

TEST(BigIntTest, DivModKnuthAddBackCase) {
  // A divisor/dividend pair engineered so qhat overshoots (exercises the
  // rare "add back" branch): u = B^4 - 1, v = B^2 + B - 1 in base 2^32.
  BigInt u = BigInt::FromHexUnchecked("ffffffffffffffffffffffffffffffff");
  BigInt v = BigInt::FromHexUnchecked("10000fffeffff");
  BigInt q, r;
  BigInt::DivMod(u, v, &q, &r);
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q, v), r), u);
  EXPECT_LT(r.Compare(v), 0);
}

TEST(BigIntTest, Shifts) {
  BigInt x = BigInt::FromHexUnchecked("deadbeef");
  EXPECT_EQ(BigInt::ShiftLeft(x, 4).ToHex(), "deadbeef0");
  EXPECT_EQ(BigInt::ShiftRight(x, 4).ToHex(), "deadbee");
  EXPECT_EQ(BigInt::ShiftLeft(x, 64).ToHex(), "deadbeef0000000000000000");
  EXPECT_TRUE(BigInt::ShiftRight(x, 32).IsZero());
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::RandomWithBits(1 + rng.NextBelow(300), rng);
    size_t s = rng.NextBelow(100);
    EXPECT_EQ(BigInt::ShiftRight(BigInt::ShiftLeft(a, s), s), a);
  }
}

TEST(BigIntTest, ModExpSmallNumbers) {
  // 3^7 mod 11 = 2187 mod 11 = 9.
  EXPECT_EQ(BigInt::ModExp(BigInt(3), BigInt(7), BigInt(11)).ToU64(), 9u);
  // Fermat: a^(p-1) = 1 mod p for prime p.
  uint64_t p = 1000000007ULL;
  for (uint64_t a : {2ULL, 3ULL, 12345ULL, 999999999ULL}) {
    EXPECT_EQ(
        BigInt::ModExp(BigInt(a), BigInt(p - 1), BigInt(p)).ToU64(), 1u);
  }
}

TEST(BigIntTest, ModExpMatchesNaive) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    BigInt base = BigInt::RandomWithBits(96, rng);
    BigInt exp = BigInt::RandomWithBits(16, rng);
    BigInt m = BigInt::RandomWithBits(96, rng);
    m.SetBit(0);  // Odd modulus: exercise the Montgomery path.
    // Naive repeated ModMul.
    BigInt naive(1);
    uint64_t e = exp.ToU64();
    BigInt b = BigInt::Mod(base, m);
    for (uint64_t j = 0; j < e; ++j) naive = BigInt::ModMul(naive, b, m);
    EXPECT_EQ(BigInt::ModExp(base, exp, m), naive) << "i=" << i;
  }
}

TEST(BigIntTest, ModExpEvenModulus) {
  // 5^3 mod 8 = 125 mod 8 = 5.
  EXPECT_EQ(BigInt::ModExp(BigInt(5), BigInt(3), BigInt(8)).ToU64(), 5u);
}

TEST(BigIntTest, ModExpZeroExponent) {
  EXPECT_TRUE(BigInt::ModExp(BigInt(123), BigInt(), BigInt(77)).IsOne());
}

TEST(BigIntTest, Gcd) {
  EXPECT_EQ(BigInt::Gcd(BigInt(48), BigInt(18)).ToU64(), 6u);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToU64(), 1u);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToU64(), 5u);
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt::RandomWithBits(128, rng);
    BigInt b = BigInt::RandomWithBits(128, rng);
    BigInt g = BigInt::Gcd(a, b);
    EXPECT_TRUE(BigInt::Mod(a, g).IsZero());
    EXPECT_TRUE(BigInt::Mod(b, g).IsZero());
  }
}

TEST(BigIntTest, ModInverse) {
  Rng rng(9);
  BigInt m = BigInt::FromHexUnchecked("fffffffb");  // Prime 2^32-5.
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::Add(BigInt::RandomBelow(
        BigInt::Sub(m, BigInt(1)), rng), BigInt(1));
    BigInt inv;
    ASSERT_TRUE(BigInt::ModInverse(a, m, &inv));
    EXPECT_TRUE(BigInt::ModMul(a, inv, m).IsOne());
  }
}

TEST(BigIntTest, ModInverseEvenModulus) {
  // Inverse of odd a mod even m exists when gcd == 1 (the RSA e/phi case).
  BigInt m(100);
  BigInt a(7);
  BigInt inv;
  ASSERT_TRUE(BigInt::ModInverse(a, m, &inv));
  EXPECT_TRUE(BigInt::ModMul(a, inv, m).IsOne());
}

TEST(BigIntTest, ModInverseFailsWhenNotCoprime) {
  BigInt inv;
  EXPECT_FALSE(BigInt::ModInverse(BigInt(6), BigInt(9), &inv));
}

TEST(BigIntTest, RandomWithBitsHasExactBitLength) {
  Rng rng(10);
  for (size_t bits : {8u, 17u, 64u, 100u, 512u}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::RandomWithBits(bits, rng).BitLength(), bits);
    }
  }
}

TEST(BigIntTest, RandomBelowIsBelow) {
  Rng rng(11);
  BigInt bound = BigInt::FromHexUnchecked("1000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::RandomBelow(bound, rng).Compare(bound), 0);
  }
}

TEST(BigIntTest, CompareOrdering) {
  BigInt a(5), b(7);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
  BigInt big = BigInt::ShiftLeft(BigInt(1), 200);
  EXPECT_TRUE(b < big);
}

}  // namespace
}  // namespace sharoes::crypto
