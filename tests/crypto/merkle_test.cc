// Merkle tree over block AEAD tags (DESIGN.md §13): root construction,
// proofs, and the domain separation / ordering properties the data-path
// integrity argument depends on.

#include <gtest/gtest.h>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "util/random.h"

namespace sharoes::crypto {
namespace {

std::vector<Bytes> RandomLeaves(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < n; ++i) leaves.push_back(rng.NextBytes(16));
  return leaves;
}

TEST(MerkleTest, EmptyRootIsAllZero) {
  Bytes root = MerkleRoot({});
  EXPECT_EQ(root, Bytes(kMerkleRootSize, 0));
}

TEST(MerkleTest, RootIsDeterministic) {
  auto leaves = RandomLeaves(7, 1);
  EXPECT_EQ(MerkleRoot(leaves), MerkleRoot(leaves));
}

TEST(MerkleTest, SingleLeafRootIsDomainSeparatedHash) {
  auto leaves = RandomLeaves(1, 2);
  // One leaf: the root is the leaf hash itself (promoted), which must be
  // prefixed 0x00 so a leaf can never be confused with an inner node.
  Bytes expected_input;
  expected_input.push_back(0x00);
  Append(expected_input, leaves[0]);
  EXPECT_EQ(MerkleRoot(leaves), Sha256Digest(expected_input));
  EXPECT_NE(MerkleRoot(leaves), Sha256Digest(leaves[0]));
}

TEST(MerkleTest, LeafChangeChangesRoot) {
  for (size_t n : {1, 2, 3, 4, 5, 8, 9}) {
    auto leaves = RandomLeaves(n, 100 + n);
    Bytes root = MerkleRoot(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto tampered = leaves;
      tampered[i][0] ^= 1;
      EXPECT_NE(MerkleRoot(tampered), root) << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, LeafOrderMatters) {
  auto leaves = RandomLeaves(5, 3);
  auto swapped = leaves;
  std::swap(swapped[1], swapped[3]);
  EXPECT_NE(MerkleRoot(leaves), MerkleRoot(swapped));
}

TEST(MerkleTest, LeafCountMatters) {
  // Dropping the last leaf (truncation) must change the root, including
  // across the odd/even promotion boundary.
  for (size_t n : {2, 3, 4, 5, 9}) {
    auto leaves = RandomLeaves(n, 200 + n);
    auto shorter = leaves;
    shorter.pop_back();
    EXPECT_NE(MerkleRoot(leaves), MerkleRoot(shorter)) << "n=" << n;
  }
}

TEST(MerkleTest, ProofsVerifyForEveryIndex) {
  for (size_t n = 1; n <= 12; ++n) {
    auto leaves = RandomLeaves(n, 300 + n);
    Bytes root = MerkleRoot(leaves);
    for (size_t i = 0; i < n; ++i) {
      auto proof = MerkleProve(leaves, i);
      ASSERT_TRUE(proof.ok()) << "n=" << n << " i=" << i;
      EXPECT_TRUE(MerkleVerify(leaves[i], *proof, root))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(MerkleTest, ProofRejectsWrongLeafAndWrongRoot) {
  auto leaves = RandomLeaves(6, 4);
  Bytes root = MerkleRoot(leaves);
  auto proof = MerkleProve(leaves, 2);
  ASSERT_TRUE(proof.ok());
  Bytes wrong_leaf = leaves[2];
  wrong_leaf[3] ^= 0x80;
  EXPECT_FALSE(MerkleVerify(wrong_leaf, *proof, root));
  Bytes wrong_root = root;
  wrong_root[0] ^= 1;
  EXPECT_FALSE(MerkleVerify(leaves[2], *proof, wrong_root));
  // A proof for one index does not authenticate another leaf.
  EXPECT_FALSE(MerkleVerify(leaves[3], *proof, root));
}

TEST(MerkleTest, ProveOutOfRangeFails) {
  auto leaves = RandomLeaves(3, 5);
  EXPECT_FALSE(MerkleProve(leaves, 3).ok());
  EXPECT_FALSE(MerkleProve({}, 0).ok());
}

TEST(MerkleTest, ProofDepthIsLogarithmic) {
  auto leaves = RandomLeaves(9, 6);
  auto proof = MerkleProve(leaves, 0);
  ASSERT_TRUE(proof.ok());
  // 9 leaves -> depth ceil(log2(9)) = 4 levels of siblings at most.
  EXPECT_LE(proof->steps.size(), 4u);
}

}  // namespace
}  // namespace sharoes::crypto
