#include "crypto/ctr.h"

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/random.h"

namespace sharoes::crypto {
namespace {

// NIST SP 800-38A CTR-AES128 vector (F.5.1). Note its counter increments
// across the whole 128-bit block, which matches ours for the low 8 bytes.
TEST(CtrTest, Sp80038aCtrVector) {
  bool ok = false;
  Bytes key = HexDecode("2b7e151628aed2a6abf7158809cf4f3c", &ok);
  ASSERT_TRUE(ok);
  Bytes iv = HexDecode("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff", &ok);
  ASSERT_TRUE(ok);
  Bytes pt = HexDecode(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710",
      &ok);
  ASSERT_TRUE(ok);
  EXPECT_EQ(HexEncode(CtrEncrypt(key, iv, pt)),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
}

TEST(CtrTest, RoundTripVariousLengths) {
  Rng rng(11);
  Bytes key = rng.NextBytes(16);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u, 4096u}) {
    Bytes pt = rng.NextBytes(len);
    Bytes iv = FreshIv(rng);
    Bytes ct = CtrEncrypt(key, iv, pt);
    EXPECT_EQ(ct.size(), len);
    EXPECT_EQ(CtrDecrypt(key, iv, ct), pt) << "len " << len;
  }
}

TEST(CtrTest, SealOpenRoundTrip) {
  Rng rng(12);
  Bytes key = rng.NextBytes(16);
  Bytes pt = ToBytes("metadata object payload");
  Bytes sealed = CtrSeal(key, pt, rng);
  EXPECT_EQ(sealed.size(), pt.size() + kCtrIvSize);
  Result<Bytes> opened = CtrOpen(key, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(CtrTest, OpenRejectsTruncatedEnvelope) {
  Bytes key(16, 1);
  Bytes tiny(kCtrIvSize - 1, 0);
  Result<Bytes> opened = CtrOpen(key, tiny);
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsCryptoError()) << opened.status().ToString();
}

TEST(CtrTest, WrongKeyYieldsGarbage) {
  Rng rng(13);
  Bytes k1 = rng.NextBytes(16), k2 = rng.NextBytes(16);
  Bytes pt = ToBytes("sensitive contents of a data block");
  Bytes sealed = CtrSeal(k1, pt, rng);
  Result<Bytes> opened = CtrOpen(k2, sealed);
  // CTR has no integrity; garbage decrypts "successfully".
  ASSERT_TRUE(opened.ok());
  EXPECT_NE(*opened, pt);
}

TEST(CtrTest, FreshIvsDiffer) {
  Rng rng(14);
  EXPECT_NE(FreshIv(rng), FreshIv(rng));
}

TEST(CtrTest, SameKeyDifferentIvDifferentCiphertext) {
  Rng rng(15);
  Bytes key = rng.NextBytes(16);
  Bytes pt(64, 0xAB);
  Bytes c1 = CtrSeal(key, pt, rng);
  Bytes c2 = CtrSeal(key, pt, rng);
  EXPECT_NE(c1, c2);
}

TEST(CtrTest, CounterCrossesBlockBoundary) {
  // An IV with 0xFF in the low counter bytes forces carries.
  Rng rng(16);
  Bytes key = rng.NextBytes(16);
  Bytes iv(kCtrIvSize, 0xFF);
  Bytes pt = rng.NextBytes(kAesBlockSize * 4);
  Bytes ct = CtrEncrypt(key, iv, pt);
  EXPECT_EQ(CtrDecrypt(key, iv, ct), pt);
}

}  // namespace
}  // namespace sharoes::crypto
