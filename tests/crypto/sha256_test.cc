#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace sharoes::crypto {
namespace {

// NIST FIPS 180-4 / well-known SHA-256 test vectors.
struct Vector {
  const char* message;
  const char* digest_hex;
};

class Sha256VectorTest : public ::testing::TestWithParam<Vector> {};

TEST_P(Sha256VectorTest, MatchesKnownDigest) {
  const Vector& v = GetParam();
  EXPECT_EQ(HexEncode(Sha256Digest(std::string_view(v.message))),
            v.digest_hex);
}

INSTANTIATE_TEST_SUITE_P(
    KnownVectors, Sha256VectorTest,
    ::testing::Values(
        Vector{"",
               "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
        Vector{"abc",
               "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
        Vector{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
               "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
        Vector{"The quick brown fox jumps over the lazy dog",
               "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"},
        Vector{"The quick brown fox jumps over the lazy dog.",
               "ef537f25c895bfa782526529a9b63d97aa631564d5d789c2b765448c8635fb6c"}));

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(HexEncode(h.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  // Splitting the input at every position must not change the digest.
  std::string msg = "incremental hashing must be split-invariant 0123456789";
  Bytes expected = Sha256Digest(msg);
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(std::string_view(msg).substr(0, split));
    h.Update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.Finish(), expected) << "split at " << split;
  }
}

TEST(Sha256Test, BlockBoundaryLengths) {
  // Lengths straddling the 64-byte block and 56-byte padding boundaries.
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 127u, 128u}) {
    std::string msg(len, 'x');
    Bytes d1 = Sha256Digest(msg);
    Sha256 h;
    for (char c : msg) h.Update(std::string_view(&c, 1));
    EXPECT_EQ(h.Finish(), d1) << "len " << len;
  }
}

TEST(Sha256Test, ResetAllowsReuse) {
  Sha256 h;
  h.Update(std::string_view("first"));
  (void)h.Finish();
  h.Reset();
  h.Update(std::string_view("abc"));
  EXPECT_EQ(HexEncode(h.Finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256Digest(std::string_view("a")),
            Sha256Digest(std::string_view("b")));
  EXPECT_NE(Sha256Digest(std::string_view("")),
            Sha256Digest(std::string_view("\0", 1)));
}

}  // namespace
}  // namespace sharoes::crypto
