#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/random.h"

namespace sharoes::crypto {
namespace {

// FIPS-197 Appendix B example vector.
TEST(AesTest, Fips197AppendixB) {
  bool ok = false;
  Bytes key = HexDecode("2b7e151628aed2a6abf7158809cf4f3c", &ok);
  ASSERT_TRUE(ok);
  Bytes pt = HexDecode("3243f6a8885a308d313198a2e0370734", &ok);
  ASSERT_TRUE(ok);
  Aes128 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ct, 16), "3925841d02dc09fbdc118597196a0b32");
}

// NIST SP 800-38A ECB-AES128 vectors (encrypt direction).
TEST(AesTest, Sp80038aEcbVectors) {
  bool ok = false;
  Bytes key = HexDecode("2b7e151628aed2a6abf7158809cf4f3c", &ok);
  ASSERT_TRUE(ok);
  Aes128 aes(key);
  const char* plain[] = {
      "6bc1bee22e409f96e93d7e117393172a", "ae2d8a571e03ac9c9eb76fac45af8e51",
      "30c81c46a35ce411e5fbc1191a0a52ef", "f69f2445df4f9b17ad2b417be66c3710"};
  const char* cipher[] = {
      "3ad77bb40d7a3660a89ecaf32466ef97", "f5d3d58503b9699de785895a96fdbaaf",
      "43b1cd7f598ece23881b00e3ed030688", "7b0c785e27e8ad3f8223207104725dd4"};
  for (int i = 0; i < 4; ++i) {
    Bytes pt = HexDecode(plain[i], &ok);
    ASSERT_TRUE(ok);
    uint8_t ct[16];
    aes.EncryptBlock(pt.data(), ct);
    EXPECT_EQ(HexEncode(ct, 16), cipher[i]) << "block " << i;
  }
}

TEST(AesTest, DecryptInvertsEncrypt) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes key = rng.NextBytes(kAes128KeySize);
    Bytes pt = rng.NextBytes(kAesBlockSize);
    Aes128 aes(key);
    uint8_t ct[16], back[16];
    aes.EncryptBlock(pt.data(), ct);
    aes.DecryptBlock(ct, back);
    EXPECT_EQ(Bytes(back, back + 16), pt) << "trial " << trial;
  }
}

TEST(AesTest, DecryptKnownVector) {
  bool ok = false;
  Bytes key = HexDecode("2b7e151628aed2a6abf7158809cf4f3c", &ok);
  ASSERT_TRUE(ok);
  Bytes ct = HexDecode("3ad77bb40d7a3660a89ecaf32466ef97", &ok);
  ASSERT_TRUE(ok);
  Aes128 aes(key);
  uint8_t pt[16];
  aes.DecryptBlock(ct.data(), pt);
  EXPECT_EQ(HexEncode(pt, 16), "6bc1bee22e409f96e93d7e117393172a");
}

TEST(AesTest, InPlaceOperation) {
  Rng rng(7);
  Bytes key = rng.NextBytes(kAes128KeySize);
  Bytes block = rng.NextBytes(kAesBlockSize);
  Bytes original = block;
  Aes128 aes(key);
  aes.EncryptBlock(block.data(), block.data());  // out aliases in
  EXPECT_NE(block, original);
  aes.DecryptBlock(block.data(), block.data());
  EXPECT_EQ(block, original);
}

TEST(AesTest, KeyAvalanche) {
  // Flipping one key bit must change the ciphertext.
  Rng rng(9);
  Bytes key = rng.NextBytes(kAes128KeySize);
  Bytes pt = rng.NextBytes(kAesBlockSize);
  Aes128 aes1(key);
  uint8_t ct1[16];
  aes1.EncryptBlock(pt.data(), ct1);
  key[0] ^= 1;
  Aes128 aes2(key);
  uint8_t ct2[16];
  aes2.EncryptBlock(pt.data(), ct2);
  EXPECT_NE(Bytes(ct1, ct1 + 16), Bytes(ct2, ct2 + 16));
}

}  // namespace
}  // namespace sharoes::crypto
