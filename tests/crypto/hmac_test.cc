#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace sharoes::crypto {
namespace {

// RFC 4231 test vectors for HMAC-SHA-256.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(HexEncode(HmacSha256(key, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  EXPECT_EQ(HexEncode(HmacSha256(key, "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case4) {
  bool ok = false;
  Bytes key = HexDecode("0102030405060708090a0b0c0d0e0f10111213141516171819",
                        &ok);
  ASSERT_TRUE(ok);
  Bytes msg(50, 0xcd);
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  Bytes key(131, 0xaa);
  EXPECT_EQ(HexEncode(HmacSha256(
                key, "Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, Rfc4231Case7LongKeyAndData) {
  Bytes key(131, 0xaa);
  std::string msg =
      "This is a test using a larger than block-size key and a larger than "
      "block-size data. The key needs to be hashed before being used by the "
      "HMAC algorithm.";
  EXPECT_EQ(HexEncode(HmacSha256(key, msg)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacTest, DifferentKeysDifferentMacs) {
  Bytes k1 = ToBytes("key-one");
  Bytes k2 = ToBytes("key-two");
  EXPECT_NE(HmacSha256(k1, "message"), HmacSha256(k2, "message"));
}

TEST(HmacTest, KeyPaddingBoundary) {
  // Keys of exactly block size, one less, one more must all work and give
  // distinct MACs.
  Bytes k63(63, 0x11), k64(64, 0x11), k65(65, 0x11);
  Bytes m = ToBytes("msg");
  EXPECT_NE(HmacSha256(k63, m), HmacSha256(k64, m));
  EXPECT_NE(HmacSha256(k64, m), HmacSha256(k65, m));
}

}  // namespace
}  // namespace sharoes::crypto
