// Parameterized property sweeps over the crypto substrate: encrypt/
// decrypt inversion across sizes and seeds, serialization stability,
// algebraic laws of the bignum layer, and sign/verify totality.

#include <gtest/gtest.h>

#include "crypto/bignum.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/kdf.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace sharoes::crypto {
namespace {

// --- CTR inversion across a size sweep ------------------------------------

class CtrSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(CtrSizeSweep, SealOpenIsIdentity) {
  Rng rng(GetParam() * 2654435761u + 1);
  Bytes key = rng.NextBytes(kAes128KeySize);
  Bytes pt = rng.NextBytes(GetParam());
  Bytes sealed = CtrSeal(key, pt, rng);
  Result<Bytes> back = CtrOpen(key, sealed);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, pt);
  // Ciphertext differs from plaintext for nonempty inputs.
  if (!pt.empty()) {
    Bytes body(sealed.begin() + kCtrIvSize, sealed.end());
    EXPECT_NE(body, pt);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CtrSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 64, 255, 256,
                                           1000, 4096, 4097, 65536));

// --- Keyed-hash derivation properties --------------------------------------

class KdfSweep : public ::testing::TestWithParam<int> {};

TEST_P(KdfSweep, DerivationIsDeterministicAndKeySeparated) {
  Rng rng(GetParam());
  SymmetricKey k1{rng.NextBytes(16)};
  SymmetricKey k2{rng.NextBytes(16)};
  std::string name = "file" + std::to_string(GetParam()) + ".txt";
  // Deterministic.
  EXPECT_EQ(kdf::DeriveNameKey(k1, name).key, kdf::DeriveNameKey(k1, name).key);
  // Separated by key.
  EXPECT_NE(kdf::DeriveNameKey(k1, name).key, kdf::DeriveNameKey(k2, name).key);
  // Separated by name.
  EXPECT_NE(kdf::DeriveNameKey(k1, name).key,
            kdf::DeriveNameKey(k1, name + "x").key);
  // Separated by label namespace (row-id vs row-key derivations must
  // never collide; exec-only tables rely on this).
  EXPECT_NE(kdf::DeriveNameKey(k1, name).key,
            kdf::DeriveLabeled(k1, "sharoes-rowid:" + name).key);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KdfSweep, ::testing::Range(1, 25));

// --- Bignum algebraic laws --------------------------------------------------

class BignumLawSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BignumLawSweep, RingLawsHold) {
  Rng rng(GetParam());
  BigInt a = BigInt::RandomWithBits(1 + rng.NextBelow(320), rng);
  BigInt b = BigInt::RandomWithBits(1 + rng.NextBelow(320), rng);
  BigInt c = BigInt::RandomWithBits(1 + rng.NextBelow(160), rng);
  // Commutativity and associativity of +.
  EXPECT_EQ(BigInt::Add(a, b), BigInt::Add(b, a));
  EXPECT_EQ(BigInt::Add(BigInt::Add(a, b), c),
            BigInt::Add(a, BigInt::Add(b, c)));
  // Associativity of *.
  EXPECT_EQ(BigInt::Mul(BigInt::Mul(a, b), c),
            BigInt::Mul(a, BigInt::Mul(b, c)));
  // (a + b) - b == a.
  EXPECT_EQ(BigInt::Sub(BigInt::Add(a, b), b), a);
  // Division identity: a == (a/b)*b + a%b, 0 <= a%b < b.
  BigInt q, r;
  BigInt::DivMod(a, b, &q, &r);
  EXPECT_EQ(BigInt::Add(BigInt::Mul(q, b), r), a);
  EXPECT_LT(r.Compare(b), 0);
  // Hex/byte round trips.
  EXPECT_EQ(BigInt::FromHexUnchecked(a.ToHex()), a);
  EXPECT_EQ(BigInt::FromBytes(a.ToBytes()), a);
}

TEST_P(BignumLawSweep, ModExpLawsHold) {
  Rng rng(GetParam() ^ 0xFEED);
  BigInt m = BigInt::RandomWithBits(128, rng);
  m.SetBit(0);  // Odd: Montgomery path.
  BigInt a = BigInt::RandomBelow(m, rng);
  uint64_t x = 1 + rng.NextBelow(40);
  uint64_t y = 1 + rng.NextBelow(40);
  // a^(x+y) == a^x * a^y (mod m).
  BigInt lhs = BigInt::ModExp(a, BigInt(x + y), m);
  BigInt rhs = BigInt::ModMul(BigInt::ModExp(a, BigInt(x), m),
                              BigInt::ModExp(a, BigInt(y), m), m);
  EXPECT_EQ(lhs, rhs);
  // (a^x)^y == a^(x*y) (mod m).
  EXPECT_EQ(BigInt::ModExp(BigInt::ModExp(a, BigInt(x), m), BigInt(y), m),
            BigInt::ModExp(a, BigInt(x * y), m));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BignumLawSweep,
                         ::testing::Range<uint64_t>(1, 30));

// --- RSA totality across key sizes -----------------------------------------

class RsaKeySizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(RsaKeySizeSweep, EncryptSignRoundTrip) {
  Rng rng(GetParam());
  RsaKeyPair kp = GenerateRsaKeyPair(GetParam(), rng);
  EXPECT_EQ(kp.pub.n.BitLength(), GetParam());
  Bytes msg = rng.NextBytes(kp.pub.MaxMessageBytes());
  auto ct = RsaEncryptBlock(kp.pub, msg, rng);
  ASSERT_TRUE(ct.ok());
  auto pt = RsaDecryptBlock(kp.priv, *ct);
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, msg);
  Bytes sig = RsaSign(kp.priv, msg);
  EXPECT_TRUE(RsaVerify(kp.pub, msg, sig));
  msg[0] ^= 1;
  EXPECT_FALSE(RsaVerify(kp.pub, msg, sig));
  // Compact private-key serialization round-trips functionally.
  auto back = RsaPrivateKey::Deserialize(kp.priv.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->d, kp.priv.d);
}

INSTANTIATE_TEST_SUITE_P(KeySizes, RsaKeySizeSweep,
                         ::testing::Values(512, 768, 1024));

// --- SHA-256 structural properties -----------------------------------------

class ShaSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(ShaSizeSweep, LengthExtensionBoundaryStability) {
  Rng rng(GetParam() + 99);
  Bytes msg = rng.NextBytes(GetParam());
  Bytes d1 = Sha256Digest(msg);
  EXPECT_EQ(d1.size(), kSha256DigestSize);
  // Chunked hashing agrees regardless of chunk size.
  for (size_t chunk : {1u, 7u, 64u}) {
    Sha256 h;
    for (size_t pos = 0; pos < msg.size(); pos += chunk) {
      size_t n = std::min(chunk, msg.size() - pos);
      h.Update(msg.data() + pos, n);
    }
    EXPECT_EQ(h.Finish(), d1) << "chunk " << chunk;
  }
  // Appending one byte changes the digest.
  Bytes extended = msg;
  extended.push_back(0x00);
  EXPECT_NE(Sha256Digest(extended), d1);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShaSizeSweep,
                         ::testing::Values(0, 1, 55, 56, 63, 64, 65, 119,
                                           128, 1000));

// --- HMAC as a PRF-shaped function ------------------------------------------

TEST(HmacPropertyTest, OutputsLookIndependentAcrossKeys) {
  // 64 single-bit-different keys must give 64 distinct MACs.
  std::set<Bytes> macs;
  Bytes base(16, 0);
  Bytes msg = ToBytes("fixed message");
  for (int bit = 0; bit < 64; ++bit) {
    Bytes key = base;
    key[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    macs.insert(HmacSha256(key, msg));
  }
  EXPECT_EQ(macs.size(), 64u);
}

}  // namespace
}  // namespace sharoes::crypto
