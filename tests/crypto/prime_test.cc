#include "crypto/prime.h"

#include <gtest/gtest.h>

namespace sharoes::crypto {
namespace {

TEST(PrimeTest, KnownSmallPrimes) {
  Rng rng(1);
  for (uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 97ULL, 7919ULL, 104729ULL}) {
    EXPECT_TRUE(IsProbablePrime(BigInt(p), rng)) << p;
  }
}

TEST(PrimeTest, KnownComposites) {
  Rng rng(2);
  for (uint64_t c : {1ULL, 4ULL, 9ULL, 100ULL, 7917ULL, 104730ULL,
                     561ULL /* Carmichael */, 41041ULL /* Carmichael */}) {
    EXPECT_FALSE(IsProbablePrime(BigInt(c), rng)) << c;
  }
}

TEST(PrimeTest, LargeKnownPrime) {
  // 2^127 - 1 is a Mersenne prime.
  Rng rng(3);
  BigInt m127 = BigInt::Sub(BigInt::ShiftLeft(BigInt(1), 127), BigInt(1));
  EXPECT_TRUE(IsProbablePrime(m127, rng));
}

TEST(PrimeTest, LargeKnownComposite) {
  // 2^128 - 1 factors (3 * 5 * 17 * ...).
  Rng rng(4);
  BigInt m128 = BigInt::Sub(BigInt::ShiftLeft(BigInt(1), 128), BigInt(1));
  EXPECT_FALSE(IsProbablePrime(m128, rng));
}

TEST(PrimeTest, GeneratedPrimesHaveRequestedBits) {
  Rng rng(5);
  for (size_t bits : {64u, 128u, 256u}) {
    BigInt p = GeneratePrime(bits, rng);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(p.IsOdd());
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(PrimeTest, GeneratedPrimesAreDistinct) {
  Rng rng(6);
  BigInt p = GeneratePrime(128, rng);
  BigInt q = GeneratePrime(128, rng);
  EXPECT_NE(p, q);
}

TEST(PrimeTest, ProductOfTwoPrimesIsComposite) {
  Rng rng(7);
  BigInt p = GeneratePrime(96, rng);
  BigInt q = GeneratePrime(96, rng);
  EXPECT_FALSE(IsProbablePrime(BigInt::Mul(p, q), rng));
}

}  // namespace
}  // namespace sharoes::crypto
