// Transport-layer regression tests: frame size enforcement on the send
// side, hostname resolution, and deadline semantics (DeadlineExceeded as
// a distinct, retryable code).

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "net/tcp_stream.h"
#include "ssp/tcp_service.h"

namespace sharoes::net {
namespace {

/// A listener that accepts connections but never reads or writes — the
/// perfect stuck peer.
class SilentListener {
 public:
  SilentListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~SilentListener() {
    for (int fd : accepted_) ::close(fd);
    ::close(fd_);
  }
  uint16_t port() const { return port_; }
  void AcceptOne() { accepted_.push_back(::accept(fd_, nullptr, nullptr)); }

 private:
  int fd_;
  uint16_t port_;
  std::vector<int> accepted_;
};

TEST(TcpStreamTest, OversizedSendFrameRejected) {
  // Regression: SendFrame used to truncate payload.size() through a u32
  // and emit a frame the peer rejects; now the sender refuses up front
  // without writing anything.
  SilentListener listener;
  auto stream = TcpStream::Connect("127.0.0.1", listener.port());
  ASSERT_TRUE(stream.ok()) << stream.status();
  Bytes oversized(static_cast<size_t>(kMaxFrame) + 1);
  Status s = stream->SendFrame(oversized);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s;
  // The stream is still usable: nothing was half-written.
  EXPECT_TRUE(stream->SendFrame(Bytes{1, 2, 3}).ok());
}

TEST(TcpStreamTest, MaxSizedFrameStillAllowed) {
  ssp::SspServer server;
  auto daemon = ssp::TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  auto stream = TcpStream::Connect("127.0.0.1", (*daemon)->port());
  ASSERT_TRUE(stream.ok());
  // Exactly kMaxFrame must pass the send-side check (the daemon will
  // answer kBadRequest since it isn't a valid request, which is fine —
  // the frame itself round-trips).
  Bytes huge(kMaxFrame);
  EXPECT_TRUE(stream->SendFrame(huge).ok());
  auto reply = stream->RecvFrame();
  EXPECT_TRUE(reply.ok()) << reply.status();
}

TEST(TcpStreamTest, HostnameConnectResolvesNames) {
  // Regression: Connect used to accept only dotted-quad IPv4 literals,
  // so --host localhost died with "bad host address".
  ssp::SspServer server;
  auto daemon = ssp::TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  auto channel = ssp::TcpSspChannel::Connect("localhost", (*daemon)->port());
  ASSERT_TRUE(channel.ok()) << channel.status();
  auto resp = (*channel)->Call(ssp::Request::PutMetadata(1, 0, {42}));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->ok());
}

TEST(TcpStreamTest, UnresolvableHostIsInvalidArgument) {
  auto stream =
      TcpStream::Connect("no-such-host.invalid", 1, {/*connect_ms=*/1000});
  ASSERT_FALSE(stream.ok());
  EXPECT_EQ(stream.status().code(), StatusCode::kInvalidArgument);
}

TEST(TcpStreamTest, RecvDeadlineExpiresAsDeadlineExceeded) {
  SilentListener listener;
  TcpTimeouts timeouts;
  timeouts.connect_ms = 2000;
  timeouts.recv_ms = 50;
  auto stream = TcpStream::Connect("127.0.0.1", listener.port(), timeouts);
  ASSERT_TRUE(stream.ok()) << stream.status();
  listener.AcceptOne();
  auto frame = stream->RecvFrame();
  ASSERT_FALSE(frame.ok());
  // The distinct code is the point: callers must be able to tell "slow"
  // (retry) from "broken" (reconnect) from "malicious" (surface).
  EXPECT_TRUE(frame.status().IsDeadlineExceeded()) << frame.status();
  EXPECT_FALSE(frame.status().IsIoError());
}

TEST(TcpStreamTest, DeadlinesRearmable) {
  SilentListener listener;
  auto stream = TcpStream::Connect("127.0.0.1", listener.port());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->SetTimeouts(/*send_ms=*/0, /*recv_ms=*/50).ok());
  listener.AcceptOne();
  auto frame = stream->RecvFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsDeadlineExceeded());
}

TEST(TcpStreamTest, RefusedConnectionIsIoErrorNotDeadline) {
  // Grab a port that is definitely closed: bind, look, close.
  uint16_t port;
  {
    SilentListener listener;
    port = listener.port();
  }
  auto stream = TcpStream::Connect("127.0.0.1", port, {/*connect_ms=*/2000});
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsIoError()) << stream.status();
}

TEST(TcpStreamTest, ConnectWithTimeoutServesNormally) {
  // The non-blocking connect path must yield a fully usable blocking
  // stream when the peer is healthy.
  ssp::SspServer server;
  auto daemon = ssp::TcpSspDaemon::Start(&server, 0);
  ASSERT_TRUE(daemon.ok());
  TcpTimeouts timeouts{/*connect_ms=*/2000, /*send_ms=*/2000,
                       /*recv_ms=*/2000};
  auto channel =
      ssp::TcpSspChannel::Connect("127.0.0.1", (*daemon)->port(), timeouts);
  ASSERT_TRUE(channel.ok()) << channel.status();
  auto resp = (*channel)->Call(ssp::Request::PutData(3, 0, {1, 2, 3}));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->ok());
  resp = (*channel)->Call(ssp::Request::GetData(3, 0));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->payload, (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace sharoes::net
