# Empty dependencies file for bench_network_sweep.
# This may be replaced when dependencies are built.
