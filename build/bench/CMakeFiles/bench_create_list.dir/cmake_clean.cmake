file(REMOVE_RECURSE
  "CMakeFiles/bench_create_list.dir/bench_create_list.cc.o"
  "CMakeFiles/bench_create_list.dir/bench_create_list.cc.o.d"
  "bench_create_list"
  "bench_create_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_create_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
