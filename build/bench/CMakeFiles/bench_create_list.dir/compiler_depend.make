# Empty compiler generated dependencies file for bench_create_list.
# This may be replaced when dependencies are built.
