# Empty compiler generated dependencies file for bench_op_costs.
# This may be replaced when dependencies are built.
