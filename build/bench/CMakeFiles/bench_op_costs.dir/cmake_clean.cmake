file(REMOVE_RECURSE
  "CMakeFiles/bench_op_costs.dir/bench_op_costs.cc.o"
  "CMakeFiles/bench_op_costs.dir/bench_op_costs.cc.o.d"
  "bench_op_costs"
  "bench_op_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
