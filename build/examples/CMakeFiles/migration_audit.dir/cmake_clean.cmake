file(REMOVE_RECURSE
  "CMakeFiles/migration_audit.dir/migration_audit.cpp.o"
  "CMakeFiles/migration_audit.dir/migration_audit.cpp.o.d"
  "migration_audit"
  "migration_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
