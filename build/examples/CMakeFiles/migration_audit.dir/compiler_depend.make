# Empty compiler generated dependencies file for migration_audit.
# This may be replaced when dependencies are built.
