# Empty compiler generated dependencies file for enterprise_sharing.
# This may be replaced when dependencies are built.
