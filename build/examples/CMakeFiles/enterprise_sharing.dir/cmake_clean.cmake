file(REMOVE_RECURSE
  "CMakeFiles/enterprise_sharing.dir/enterprise_sharing.cpp.o"
  "CMakeFiles/enterprise_sharing.dir/enterprise_sharing.cpp.o.d"
  "enterprise_sharing"
  "enterprise_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
