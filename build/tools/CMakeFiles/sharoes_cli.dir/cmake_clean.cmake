file(REMOVE_RECURSE
  "CMakeFiles/sharoes_cli.dir/sharoes_cli.cc.o"
  "CMakeFiles/sharoes_cli.dir/sharoes_cli.cc.o.d"
  "sharoes_cli"
  "sharoes_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
