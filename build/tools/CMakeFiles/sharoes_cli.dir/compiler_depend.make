# Empty compiler generated dependencies file for sharoes_cli.
# This may be replaced when dependencies are built.
