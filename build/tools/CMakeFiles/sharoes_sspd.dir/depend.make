# Empty dependencies file for sharoes_sspd.
# This may be replaced when dependencies are built.
