file(REMOVE_RECURSE
  "CMakeFiles/sharoes_sspd.dir/sharoes_sspd.cc.o"
  "CMakeFiles/sharoes_sspd.dir/sharoes_sspd.cc.o.d"
  "sharoes_sspd"
  "sharoes_sspd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_sspd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
