file(REMOVE_RECURSE
  "CMakeFiles/partial_update_test.dir/core/partial_update_test.cc.o"
  "CMakeFiles/partial_update_test.dir/core/partial_update_test.cc.o.d"
  "partial_update_test"
  "partial_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
