# Empty dependencies file for partial_update_test.
# This may be replaced when dependencies are built.
