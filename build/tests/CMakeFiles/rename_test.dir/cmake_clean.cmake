file(REMOVE_RECURSE
  "CMakeFiles/rename_test.dir/core/rename_test.cc.o"
  "CMakeFiles/rename_test.dir/core/rename_test.cc.o.d"
  "rename_test"
  "rename_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
