# Empty dependencies file for access_equivalence_test.
# This may be replaced when dependencies are built.
