file(REMOVE_RECURSE
  "CMakeFiles/access_equivalence_test.dir/core/access_equivalence_test.cc.o"
  "CMakeFiles/access_equivalence_test.dir/core/access_equivalence_test.cc.o.d"
  "access_equivalence_test"
  "access_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
