file(REMOVE_RECURSE
  "CMakeFiles/cap_policy_test.dir/core/cap_policy_test.cc.o"
  "CMakeFiles/cap_policy_test.dir/core/cap_policy_test.cc.o.d"
  "cap_policy_test"
  "cap_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
