# Empty dependencies file for cap_policy_test.
# This may be replaced when dependencies are built.
