file(REMOVE_RECURSE
  "CMakeFiles/freshness_test.dir/core/freshness_test.cc.o"
  "CMakeFiles/freshness_test.dir/core/freshness_test.cc.o.d"
  "freshness_test"
  "freshness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freshness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
