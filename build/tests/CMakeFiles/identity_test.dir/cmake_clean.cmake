file(REMOVE_RECURSE
  "CMakeFiles/identity_test.dir/core/identity_test.cc.o"
  "CMakeFiles/identity_test.dir/core/identity_test.cc.o.d"
  "identity_test"
  "identity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
