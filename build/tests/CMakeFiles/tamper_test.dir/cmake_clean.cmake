file(REMOVE_RECURSE
  "CMakeFiles/tamper_test.dir/core/tamper_test.cc.o"
  "CMakeFiles/tamper_test.dir/core/tamper_test.cc.o.d"
  "tamper_test"
  "tamper_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
