# Empty compiler generated dependencies file for tamper_test.
# This may be replaced when dependencies are built.
