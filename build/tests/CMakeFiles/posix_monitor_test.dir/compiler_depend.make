# Empty compiler generated dependencies file for posix_monitor_test.
# This may be replaced when dependencies are built.
