file(REMOVE_RECURSE
  "CMakeFiles/posix_monitor_test.dir/fs/posix_monitor_test.cc.o"
  "CMakeFiles/posix_monitor_test.dir/fs/posix_monitor_test.cc.o.d"
  "posix_monitor_test"
  "posix_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
