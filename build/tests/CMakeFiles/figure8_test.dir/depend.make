# Empty dependencies file for figure8_test.
# This may be replaced when dependencies are built.
