file(REMOVE_RECURSE
  "CMakeFiles/figure8_test.dir/workload/figure8_test.cc.o"
  "CMakeFiles/figure8_test.dir/workload/figure8_test.cc.o.d"
  "figure8_test"
  "figure8_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure8_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
