# Empty compiler generated dependencies file for ssp_test.
# This may be replaced when dependencies are built.
