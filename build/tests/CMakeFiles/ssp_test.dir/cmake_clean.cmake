file(REMOVE_RECURSE
  "CMakeFiles/ssp_test.dir/ssp/ssp_test.cc.o"
  "CMakeFiles/ssp_test.dir/ssp/ssp_test.cc.o.d"
  "ssp_test"
  "ssp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
