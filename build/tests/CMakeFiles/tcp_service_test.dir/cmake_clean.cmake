file(REMOVE_RECURSE
  "CMakeFiles/tcp_service_test.dir/ssp/tcp_service_test.cc.o"
  "CMakeFiles/tcp_service_test.dir/ssp/tcp_service_test.cc.o.d"
  "tcp_service_test"
  "tcp_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
