# Empty dependencies file for acl_split_test.
# This may be replaced when dependencies are built.
