file(REMOVE_RECURSE
  "CMakeFiles/acl_split_test.dir/core/acl_split_test.cc.o"
  "CMakeFiles/acl_split_test.dir/core/acl_split_test.cc.o.d"
  "acl_split_test"
  "acl_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acl_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
