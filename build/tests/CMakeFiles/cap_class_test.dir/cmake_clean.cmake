file(REMOVE_RECURSE
  "CMakeFiles/cap_class_test.dir/core/cap_class_test.cc.o"
  "CMakeFiles/cap_class_test.dir/core/cap_class_test.cc.o.d"
  "cap_class_test"
  "cap_class_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cap_class_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
