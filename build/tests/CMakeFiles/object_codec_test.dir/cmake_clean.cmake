file(REMOVE_RECURSE
  "CMakeFiles/object_codec_test.dir/core/object_codec_test.cc.o"
  "CMakeFiles/object_codec_test.dir/core/object_codec_test.cc.o.d"
  "object_codec_test"
  "object_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
