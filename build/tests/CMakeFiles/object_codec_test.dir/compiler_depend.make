# Empty compiler generated dependencies file for object_codec_test.
# This may be replaced when dependencies are built.
