# Empty dependencies file for ctr_test.
# This may be replaced when dependencies are built.
