file(REMOVE_RECURSE
  "CMakeFiles/ctr_test.dir/crypto/ctr_test.cc.o"
  "CMakeFiles/ctr_test.dir/crypto/ctr_test.cc.o.d"
  "ctr_test"
  "ctr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
