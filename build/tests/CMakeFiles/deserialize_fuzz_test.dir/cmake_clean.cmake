file(REMOVE_RECURSE
  "CMakeFiles/deserialize_fuzz_test.dir/fuzz/deserialize_fuzz_test.cc.o"
  "CMakeFiles/deserialize_fuzz_test.dir/fuzz/deserialize_fuzz_test.cc.o.d"
  "deserialize_fuzz_test"
  "deserialize_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deserialize_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
