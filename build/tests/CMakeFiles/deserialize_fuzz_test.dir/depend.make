# Empty dependencies file for deserialize_fuzz_test.
# This may be replaced when dependencies are built.
