file(REMOVE_RECURSE
  "libsharoes_util.a"
)
