file(REMOVE_RECURSE
  "CMakeFiles/sharoes_util.dir/util/binary_io.cc.o"
  "CMakeFiles/sharoes_util.dir/util/binary_io.cc.o.d"
  "CMakeFiles/sharoes_util.dir/util/bytes.cc.o"
  "CMakeFiles/sharoes_util.dir/util/bytes.cc.o.d"
  "CMakeFiles/sharoes_util.dir/util/random.cc.o"
  "CMakeFiles/sharoes_util.dir/util/random.cc.o.d"
  "CMakeFiles/sharoes_util.dir/util/sim_clock.cc.o"
  "CMakeFiles/sharoes_util.dir/util/sim_clock.cc.o.d"
  "CMakeFiles/sharoes_util.dir/util/status.cc.o"
  "CMakeFiles/sharoes_util.dir/util/status.cc.o.d"
  "libsharoes_util.a"
  "libsharoes_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
