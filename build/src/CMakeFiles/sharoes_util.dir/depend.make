# Empty dependencies file for sharoes_util.
# This may be replaced when dependencies are built.
