# Empty dependencies file for sharoes_baselines.
# This may be replaced when dependencies are built.
