file(REMOVE_RECURSE
  "libsharoes_baselines.a"
)
