file(REMOVE_RECURSE
  "CMakeFiles/sharoes_baselines.dir/baselines/baseline.cc.o"
  "CMakeFiles/sharoes_baselines.dir/baselines/baseline.cc.o.d"
  "libsharoes_baselines.a"
  "libsharoes_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
