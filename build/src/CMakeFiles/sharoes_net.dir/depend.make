# Empty dependencies file for sharoes_net.
# This may be replaced when dependencies are built.
