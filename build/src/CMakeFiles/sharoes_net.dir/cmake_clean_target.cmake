file(REMOVE_RECURSE
  "libsharoes_net.a"
)
