
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/network_model.cc" "src/CMakeFiles/sharoes_net.dir/net/network_model.cc.o" "gcc" "src/CMakeFiles/sharoes_net.dir/net/network_model.cc.o.d"
  "/root/repo/src/net/tcp_stream.cc" "src/CMakeFiles/sharoes_net.dir/net/tcp_stream.cc.o" "gcc" "src/CMakeFiles/sharoes_net.dir/net/tcp_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sharoes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
