file(REMOVE_RECURSE
  "CMakeFiles/sharoes_net.dir/net/network_model.cc.o"
  "CMakeFiles/sharoes_net.dir/net/network_model.cc.o.d"
  "CMakeFiles/sharoes_net.dir/net/tcp_stream.cc.o"
  "CMakeFiles/sharoes_net.dir/net/tcp_stream.cc.o.d"
  "libsharoes_net.a"
  "libsharoes_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
