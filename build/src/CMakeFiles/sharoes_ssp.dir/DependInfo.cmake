
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssp/message.cc" "src/CMakeFiles/sharoes_ssp.dir/ssp/message.cc.o" "gcc" "src/CMakeFiles/sharoes_ssp.dir/ssp/message.cc.o.d"
  "/root/repo/src/ssp/object_store.cc" "src/CMakeFiles/sharoes_ssp.dir/ssp/object_store.cc.o" "gcc" "src/CMakeFiles/sharoes_ssp.dir/ssp/object_store.cc.o.d"
  "/root/repo/src/ssp/ssp_server.cc" "src/CMakeFiles/sharoes_ssp.dir/ssp/ssp_server.cc.o" "gcc" "src/CMakeFiles/sharoes_ssp.dir/ssp/ssp_server.cc.o.d"
  "/root/repo/src/ssp/tcp_service.cc" "src/CMakeFiles/sharoes_ssp.dir/ssp/tcp_service.cc.o" "gcc" "src/CMakeFiles/sharoes_ssp.dir/ssp/tcp_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sharoes_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
