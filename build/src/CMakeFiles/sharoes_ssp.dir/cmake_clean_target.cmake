file(REMOVE_RECURSE
  "libsharoes_ssp.a"
)
