# Empty compiler generated dependencies file for sharoes_ssp.
# This may be replaced when dependencies are built.
