file(REMOVE_RECURSE
  "CMakeFiles/sharoes_ssp.dir/ssp/message.cc.o"
  "CMakeFiles/sharoes_ssp.dir/ssp/message.cc.o.d"
  "CMakeFiles/sharoes_ssp.dir/ssp/object_store.cc.o"
  "CMakeFiles/sharoes_ssp.dir/ssp/object_store.cc.o.d"
  "CMakeFiles/sharoes_ssp.dir/ssp/ssp_server.cc.o"
  "CMakeFiles/sharoes_ssp.dir/ssp/ssp_server.cc.o.d"
  "CMakeFiles/sharoes_ssp.dir/ssp/tcp_service.cc.o"
  "CMakeFiles/sharoes_ssp.dir/ssp/tcp_service.cc.o.d"
  "libsharoes_ssp.a"
  "libsharoes_ssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_ssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
