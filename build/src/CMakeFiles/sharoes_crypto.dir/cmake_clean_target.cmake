file(REMOVE_RECURSE
  "libsharoes_crypto.a"
)
