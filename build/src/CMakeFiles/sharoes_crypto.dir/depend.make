# Empty dependencies file for sharoes_crypto.
# This may be replaced when dependencies are built.
