file(REMOVE_RECURSE
  "CMakeFiles/sharoes_crypto.dir/crypto/aes.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/aes.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/bignum.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/bignum.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/ctr.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/ctr.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/kdf.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/kdf.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/keys.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/keys.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/prime.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/prime.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/rsa.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/rsa.cc.o.d"
  "CMakeFiles/sharoes_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/sharoes_crypto.dir/crypto/sha256.cc.o.d"
  "libsharoes_crypto.a"
  "libsharoes_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
