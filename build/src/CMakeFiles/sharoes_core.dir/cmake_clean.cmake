file(REMOVE_RECURSE
  "CMakeFiles/sharoes_core.dir/core/cache.cc.o"
  "CMakeFiles/sharoes_core.dir/core/cache.cc.o.d"
  "CMakeFiles/sharoes_core.dir/core/cap_class.cc.o"
  "CMakeFiles/sharoes_core.dir/core/cap_class.cc.o.d"
  "CMakeFiles/sharoes_core.dir/core/cap_policy.cc.o"
  "CMakeFiles/sharoes_core.dir/core/cap_policy.cc.o.d"
  "CMakeFiles/sharoes_core.dir/core/client.cc.o"
  "CMakeFiles/sharoes_core.dir/core/client.cc.o.d"
  "CMakeFiles/sharoes_core.dir/core/identity.cc.o"
  "CMakeFiles/sharoes_core.dir/core/identity.cc.o.d"
  "CMakeFiles/sharoes_core.dir/core/migration.cc.o"
  "CMakeFiles/sharoes_core.dir/core/migration.cc.o.d"
  "CMakeFiles/sharoes_core.dir/core/object_codec.cc.o"
  "CMakeFiles/sharoes_core.dir/core/object_codec.cc.o.d"
  "CMakeFiles/sharoes_core.dir/core/refs.cc.o"
  "CMakeFiles/sharoes_core.dir/core/refs.cc.o.d"
  "libsharoes_core.a"
  "libsharoes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
