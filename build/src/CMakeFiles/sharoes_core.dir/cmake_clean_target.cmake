file(REMOVE_RECURSE
  "libsharoes_core.a"
)
