
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cache.cc" "src/CMakeFiles/sharoes_core.dir/core/cache.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/cache.cc.o.d"
  "/root/repo/src/core/cap_class.cc" "src/CMakeFiles/sharoes_core.dir/core/cap_class.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/cap_class.cc.o.d"
  "/root/repo/src/core/cap_policy.cc" "src/CMakeFiles/sharoes_core.dir/core/cap_policy.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/cap_policy.cc.o.d"
  "/root/repo/src/core/client.cc" "src/CMakeFiles/sharoes_core.dir/core/client.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/client.cc.o.d"
  "/root/repo/src/core/identity.cc" "src/CMakeFiles/sharoes_core.dir/core/identity.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/identity.cc.o.d"
  "/root/repo/src/core/migration.cc" "src/CMakeFiles/sharoes_core.dir/core/migration.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/migration.cc.o.d"
  "/root/repo/src/core/object_codec.cc" "src/CMakeFiles/sharoes_core.dir/core/object_codec.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/object_codec.cc.o.d"
  "/root/repo/src/core/refs.cc" "src/CMakeFiles/sharoes_core.dir/core/refs.cc.o" "gcc" "src/CMakeFiles/sharoes_core.dir/core/refs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sharoes_ssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
