# Empty dependencies file for sharoes_core.
# This may be replaced when dependencies are built.
