
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/andrew.cc" "src/CMakeFiles/sharoes_workload.dir/workload/andrew.cc.o" "gcc" "src/CMakeFiles/sharoes_workload.dir/workload/andrew.cc.o.d"
  "/root/repo/src/workload/create_list.cc" "src/CMakeFiles/sharoes_workload.dir/workload/create_list.cc.o" "gcc" "src/CMakeFiles/sharoes_workload.dir/workload/create_list.cc.o.d"
  "/root/repo/src/workload/harness.cc" "src/CMakeFiles/sharoes_workload.dir/workload/harness.cc.o" "gcc" "src/CMakeFiles/sharoes_workload.dir/workload/harness.cc.o.d"
  "/root/repo/src/workload/op_costs.cc" "src/CMakeFiles/sharoes_workload.dir/workload/op_costs.cc.o" "gcc" "src/CMakeFiles/sharoes_workload.dir/workload/op_costs.cc.o.d"
  "/root/repo/src/workload/postmark.cc" "src/CMakeFiles/sharoes_workload.dir/workload/postmark.cc.o" "gcc" "src/CMakeFiles/sharoes_workload.dir/workload/postmark.cc.o.d"
  "/root/repo/src/workload/report.cc" "src/CMakeFiles/sharoes_workload.dir/workload/report.cc.o" "gcc" "src/CMakeFiles/sharoes_workload.dir/workload/report.cc.o.d"
  "/root/repo/src/workload/tree_gen.cc" "src/CMakeFiles/sharoes_workload.dir/workload/tree_gen.cc.o" "gcc" "src/CMakeFiles/sharoes_workload.dir/workload/tree_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sharoes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_ssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
