file(REMOVE_RECURSE
  "libsharoes_workload.a"
)
