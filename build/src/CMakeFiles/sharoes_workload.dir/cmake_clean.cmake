file(REMOVE_RECURSE
  "CMakeFiles/sharoes_workload.dir/workload/andrew.cc.o"
  "CMakeFiles/sharoes_workload.dir/workload/andrew.cc.o.d"
  "CMakeFiles/sharoes_workload.dir/workload/create_list.cc.o"
  "CMakeFiles/sharoes_workload.dir/workload/create_list.cc.o.d"
  "CMakeFiles/sharoes_workload.dir/workload/harness.cc.o"
  "CMakeFiles/sharoes_workload.dir/workload/harness.cc.o.d"
  "CMakeFiles/sharoes_workload.dir/workload/op_costs.cc.o"
  "CMakeFiles/sharoes_workload.dir/workload/op_costs.cc.o.d"
  "CMakeFiles/sharoes_workload.dir/workload/postmark.cc.o"
  "CMakeFiles/sharoes_workload.dir/workload/postmark.cc.o.d"
  "CMakeFiles/sharoes_workload.dir/workload/report.cc.o"
  "CMakeFiles/sharoes_workload.dir/workload/report.cc.o.d"
  "CMakeFiles/sharoes_workload.dir/workload/tree_gen.cc.o"
  "CMakeFiles/sharoes_workload.dir/workload/tree_gen.cc.o.d"
  "libsharoes_workload.a"
  "libsharoes_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
