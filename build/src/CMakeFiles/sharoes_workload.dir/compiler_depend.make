# Empty compiler generated dependencies file for sharoes_workload.
# This may be replaced when dependencies are built.
