
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/dir_table.cc" "src/CMakeFiles/sharoes_fs.dir/fs/dir_table.cc.o" "gcc" "src/CMakeFiles/sharoes_fs.dir/fs/dir_table.cc.o.d"
  "/root/repo/src/fs/metadata.cc" "src/CMakeFiles/sharoes_fs.dir/fs/metadata.cc.o" "gcc" "src/CMakeFiles/sharoes_fs.dir/fs/metadata.cc.o.d"
  "/root/repo/src/fs/mode.cc" "src/CMakeFiles/sharoes_fs.dir/fs/mode.cc.o" "gcc" "src/CMakeFiles/sharoes_fs.dir/fs/mode.cc.o.d"
  "/root/repo/src/fs/path.cc" "src/CMakeFiles/sharoes_fs.dir/fs/path.cc.o" "gcc" "src/CMakeFiles/sharoes_fs.dir/fs/path.cc.o.d"
  "/root/repo/src/fs/posix_monitor.cc" "src/CMakeFiles/sharoes_fs.dir/fs/posix_monitor.cc.o" "gcc" "src/CMakeFiles/sharoes_fs.dir/fs/posix_monitor.cc.o.d"
  "/root/repo/src/fs/superblock.cc" "src/CMakeFiles/sharoes_fs.dir/fs/superblock.cc.o" "gcc" "src/CMakeFiles/sharoes_fs.dir/fs/superblock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sharoes_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sharoes_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
