# Empty dependencies file for sharoes_fs.
# This may be replaced when dependencies are built.
