file(REMOVE_RECURSE
  "CMakeFiles/sharoes_fs.dir/fs/dir_table.cc.o"
  "CMakeFiles/sharoes_fs.dir/fs/dir_table.cc.o.d"
  "CMakeFiles/sharoes_fs.dir/fs/metadata.cc.o"
  "CMakeFiles/sharoes_fs.dir/fs/metadata.cc.o.d"
  "CMakeFiles/sharoes_fs.dir/fs/mode.cc.o"
  "CMakeFiles/sharoes_fs.dir/fs/mode.cc.o.d"
  "CMakeFiles/sharoes_fs.dir/fs/path.cc.o"
  "CMakeFiles/sharoes_fs.dir/fs/path.cc.o.d"
  "CMakeFiles/sharoes_fs.dir/fs/posix_monitor.cc.o"
  "CMakeFiles/sharoes_fs.dir/fs/posix_monitor.cc.o.d"
  "CMakeFiles/sharoes_fs.dir/fs/superblock.cc.o"
  "CMakeFiles/sharoes_fs.dir/fs/superblock.cc.o.d"
  "libsharoes_fs.a"
  "libsharoes_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharoes_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
