file(REMOVE_RECURSE
  "libsharoes_fs.a"
)
