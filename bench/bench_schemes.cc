// Ablation of the paper's §III-D: Scheme-1 (replicate the metadata tree
// per user) vs. Scheme-2 (replicate per CAP with split points).
//
// The paper's claim: Scheme-1 costs ~$0.60 per user per month for a
// filesystem with one million files at Amazon S3 prices, plus update
// costs that scale with the user count; Scheme-2 trades that for a small
// number of replicas (<= 5 CAPs per directory, 4 per file) at slightly
// higher access cost on split points.

#include <cstdio>

#include "workload/create_list.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

// Amazon S3 storage price circa the paper: $0.15 / GB / month.
constexpr double kS3DollarsPerGbMonth = 0.15;

void Run() {
  Heading("Scheme-1 vs Scheme-2: storage and update-cost ablation");
  Table table({"users", "scheme", "metadata KB (100 objs)",
               "metadata bytes/file/user", "$/user/month @ 1M files",
               "create cost (ms/op)"});
  for (size_t users : {1u, 5u, 10u, 25u}) {
    for (core::Scheme scheme :
         {core::Scheme::kScheme1, core::Scheme::kScheme2}) {
      BenchWorldOptions opts;
      opts.variant = SystemVariant::kSharoes;
      opts.scheme = scheme;
      opts.registered_users = users;
      BenchWorld world(opts);

      // Populate: 10 dirs x 9 files = ~100 objects.
      CreateListParams params;
      params.dirs = 10;
      params.files_per_dir = 9;
      CreateListResult r = RunCreateList(world, params);
      double create_ms_per_op =
          r.create.total_ms() / (params.dirs * (1 + params.files_per_dir));

      ssp::StorageStats stats = world.server().store().Stats();
      uint64_t md_bytes = stats.metadata_bytes + stats.user_metadata_bytes +
                          stats.superblock_bytes + stats.group_key_bytes;
      double objects = params.dirs * (1.0 + params.files_per_dir) + 2;
      double bytes_per_file_per_user =
          static_cast<double>(md_bytes) / objects / static_cast<double>(users);
      double dollars = bytes_per_file_per_user * 1e6 / (1 << 30) *
                       kS3DollarsPerGbMonth;
      char dollars_s[32], bpfu[32];
      std::snprintf(dollars_s, sizeof(dollars_s), "$%.2f", dollars);
      std::snprintf(bpfu, sizeof(bpfu), "%.0f", bytes_per_file_per_user);
      table.AddRow({std::to_string(users),
                    scheme == core::Scheme::kScheme1 ? "Scheme-1" : "Scheme-2",
                    std::to_string(md_bytes / 1024), bpfu, dollars_s,
                    Millis(create_ms_per_op)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: Scheme-1 metadata bytes and per-create cost grow"
      " linearly with the user count (the paper's ~$0.60/user/month at"
      " 1M files); Scheme-2 stays near-flat because replicas track CAPs"
      " (classes), not users.\n");
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  return 0;
}
