// Micro-benchmarks of the from-scratch crypto primitives underlying the
// cost model: AES-128-CTR, SHA-256, HMAC, RSA public/private operations
// and the ESIGN-substitute signatures. These are real wall-clock numbers
// on the build machine (google-benchmark); the calibrated virtual costs
// used in the paper reproduction are documented in crypto/keys.h.

#include <benchmark/benchmark.h>

#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace sharoes::crypto {
namespace {

Rng& BenchRng() {
  static Rng* rng = new Rng(0xBEBC);
  return *rng;
}

const RsaKeyPair& Rsa2048() {
  static RsaKeyPair* kp =
      new RsaKeyPair(GenerateRsaKeyPair(2048, BenchRng()));
  return *kp;
}

const RsaKeyPair& Rsa512() {
  static RsaKeyPair* kp = new RsaKeyPair(GenerateRsaKeyPair(512, BenchRng()));
  return *kp;
}

void BM_Sha256(benchmark::State& state) {
  Bytes data = BenchRng().NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = BenchRng().NextBytes(16);
  Bytes data = BenchRng().NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_AesCtrEncrypt(benchmark::State& state) {
  Bytes key = BenchRng().NextBytes(16);
  Bytes iv = FreshIv(BenchRng());
  Bytes data = BenchRng().NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CtrEncrypt(key, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtrEncrypt)->Arg(4096)->Arg(1 << 20);

void BM_RsaKeygen512(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateRsaKeyPair(512, BenchRng()));
  }
}
BENCHMARK(BM_RsaKeygen512);

void BM_Rsa2048PublicOp(benchmark::State& state) {
  Bytes msg = BenchRng().NextBytes(100);
  for (auto _ : state) {
    auto ct = RsaEncryptBlock(Rsa2048().pub, msg, BenchRng());
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_Rsa2048PublicOp);

void BM_Rsa2048PrivateOp(benchmark::State& state) {
  Bytes msg = BenchRng().NextBytes(100);
  auto ct = RsaEncryptBlock(Rsa2048().pub, msg, BenchRng());
  for (auto _ : state) {
    auto pt = RsaDecryptBlock(Rsa2048().priv, *ct);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_Rsa2048PrivateOp);

void BM_EsignSubstituteSign(benchmark::State& state) {
  // RSA-512 signatures stand in for ESIGN (paper: "over an order of
  // magnitude faster" than RSA-2048 — compare with BM_Rsa2048PrivateOp).
  Bytes msg = BenchRng().NextBytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(Rsa512().priv, msg));
  }
}
BENCHMARK(BM_EsignSubstituteSign);

void BM_EsignSubstituteVerify(benchmark::State& state) {
  Bytes msg = BenchRng().NextBytes(256);
  Bytes sig = RsaSign(Rsa512().priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(Rsa512().pub, msg, sig));
  }
}
BENCHMARK(BM_EsignSubstituteVerify);

}  // namespace
}  // namespace sharoes::crypto

BENCHMARK_MAIN();
