// Micro-benchmarks of the from-scratch crypto primitives underlying the
// cost model: AES-128-CTR, AES-128-GCM (portable and AES-NI/CLMUL),
// SHA-256, HMAC, RSA public/private operations and the ESIGN-substitute
// signatures. These are real wall-clock numbers on the build machine;
// the calibrated virtual costs used in the paper reproduction are
// documented in crypto/keys.h and are NOT derived from this binary.
//
// Besides the google-benchmark suite, two special modes back the CI
// crypto job:
//
//   bench_crypto --self-check
//     Cross-checks the AES-NI/CLMUL fast paths byte-for-byte against the
//     portable implementations over a random corpus. Prints SKIP and
//     exits 0 on CPUs without the extensions.
//
//   bench_crypto --json <path>
//     Writes a GiB/s throughput table (aes_ctr / ghash / gcm_seal /
//     gcm_open, portable and accelerated, 4 KiB and 1 MiB payloads) as
//     JSON — the BENCH_crypto.json artifact.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/aead.h"
#include "crypto/aes.h"
#include "crypto/aes_accel.h"
#include "crypto/ctr.h"
#include "crypto/hmac.h"
#include "crypto/keys.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace sharoes::crypto {
namespace {

Rng& BenchRng() {
  static Rng* rng = new Rng(0xBEBC);
  return *rng;
}

const RsaKeyPair& Rsa2048() {
  static RsaKeyPair* kp =
      new RsaKeyPair(GenerateRsaKeyPair(2048, BenchRng()));
  return *kp;
}

const RsaKeyPair& Rsa512() {
  static RsaKeyPair* kp = new RsaKeyPair(GenerateRsaKeyPair(512, BenchRng()));
  return *kp;
}

// ---------------------------------------------------------------------
// Portable CTR reference (the exact ctr.cc fallback loop), used both to
// cross-check CtrXorAccel and as the portable aes_ctr throughput row.
// ---------------------------------------------------------------------

Bytes PortableCtr(const Bytes& key, const Bytes& iv, const Bytes& input,
                  size_t ctr_bytes) {
  Aes128 aes(key);
  Bytes out(input.size());
  uint8_t counter[kAesBlockSize];
  std::memcpy(counter, iv.data(), kAesBlockSize);
  uint8_t keystream[kAesBlockSize];
  size_t pos = 0;
  while (pos < input.size()) {
    aes.EncryptBlock(counter, keystream);
    size_t n = std::min(input.size() - pos, kAesBlockSize);
    for (size_t i = 0; i < n; ++i) out[pos + i] = input[pos + i] ^ keystream[i];
    pos += n;
    for (int i = kAesBlockSize - 1; i >= static_cast<int>(16 - ctr_bytes);
         --i) {
      if (++counter[i] != 0) break;
    }
  }
  return out;
}

Bytes AccelCtr(const Bytes& key, const Bytes& iv, const Bytes& input,
               size_t ctr_bytes) {
  AesAccelSchedule sched;
  ExpandKeyAccel(key.data(), &sched);
  uint8_t counter[kAesBlockSize];
  std::memcpy(counter, iv.data(), kAesBlockSize);
  Bytes out(input.size());
  CtrXorAccel(sched, counter, ctr_bytes, input.data(), out.data(),
              input.size());
  return out;
}

// ---------------------------------------------------------------------
// --self-check: byte-for-byte agreement of the fast paths.
// ---------------------------------------------------------------------

int SelfCheck() {
  if (!CpuHasAesClmul()) {
    std::printf("SKIP: CPU lacks AES-NI/PCLMUL/SSSE3; no fast path to "
                "cross-check\n");
    return 0;
  }
  Rng rng(0x5E1F);
  size_t cases = 0;
  for (int iter = 0; iter < 400; ++iter) {
    Bytes key = rng.NextBytes(16);
    Bytes iv = rng.NextBytes(kAesBlockSize);
    Bytes data = rng.NextBytes(rng.NextU64() % 8192);
    // CTR keystream, both counter widths the codebase uses (ctr.cc uses
    // 8, GCM's inc32 uses 4).
    for (size_t ctr_bytes : {4u, 8u}) {
      if (PortableCtr(key, iv, data, ctr_bytes) !=
          AccelCtr(key, iv, data, ctr_bytes)) {
        std::printf("FAIL: CTR mismatch (ctr_bytes=%zu, len=%zu)\n",
                    ctr_bytes, data.size());
        return 1;
      }
      ++cases;
    }
    // Full GCM seal + open, portable vs accelerated, both directions.
    Bytes nonce = rng.NextBytes(kAeadNonceSize);
    Bytes aad = rng.NextBytes(rng.NextU64() % 128);
    ForceAeadImpl(AeadImpl::kPortable);
    Bytes tag_p;
    Bytes ct_p = GcmSeal(key, nonce, aad, data, &tag_p);
    ForceAeadImpl(AeadImpl::kAccelerated);
    Bytes tag_a;
    Bytes ct_a = GcmSeal(key, nonce, aad, data, &tag_a);
    if (ct_p != ct_a || tag_p != tag_a) {
      ResetAeadImpl();
      std::printf("FAIL: GCM seal mismatch (len=%zu)\n", data.size());
      return 1;
    }
    auto open_a = GcmOpen(key, nonce, aad, ct_p, tag_p);
    ForceAeadImpl(AeadImpl::kPortable);
    auto open_p = GcmOpen(key, nonce, aad, ct_a, tag_a);
    ResetAeadImpl();
    if (!open_a.ok() || !open_p.ok() || *open_a != data || *open_p != data) {
      std::printf("FAIL: GCM cross-open mismatch (len=%zu)\n", data.size());
      return 1;
    }
    cases += 2;
  }
  std::printf("OK: %zu cross-implementation cases agree byte-for-byte\n",
              cases);
  return 0;
}

// ---------------------------------------------------------------------
// --json: GiB/s throughput table.
// ---------------------------------------------------------------------

/// Measures `fn` (which processes `bytes` per call) and returns GiB/s.
template <typename Fn>
double Throughput(size_t bytes, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // Warm-up (key schedules, caches).
  size_t iters = 1;
  for (;;) {
    auto start = clock::now();
    for (size_t i = 0; i < iters; ++i) fn();
    double secs = std::chrono::duration<double>(clock::now() - start).count();
    if (secs >= 0.05) {
      return static_cast<double>(bytes) * static_cast<double>(iters) / secs /
             (1024.0 * 1024.0 * 1024.0);
    }
    iters *= 4;
  }
}

struct JsonRow {
  const char* primitive;
  const char* impl;
  size_t size;
  double gib_s;
};

int WriteJson(const std::string& path) {
  Rng rng(0x71B5);
  Bytes key = rng.NextBytes(16);
  Bytes iv = rng.NextBytes(kAesBlockSize);
  Bytes nonce = rng.NextBytes(kAeadNonceSize);
  std::vector<JsonRow> rows;
  std::vector<const char*> impls = {"portable"};
  if (CpuHasAesClmul()) impls.push_back("accelerated");

  for (size_t size : {size_t{4096}, size_t{1} << 20}) {
    Bytes data = rng.NextBytes(size);
    Bytes tag;
    Bytes ct = GcmSeal(key, nonce, {}, data, &tag);
    for (const char* impl : impls) {
      bool accel = std::strcmp(impl, "accelerated") == 0;
      ForceAeadImpl(accel ? AeadImpl::kAccelerated : AeadImpl::kPortable);
      rows.push_back({"aes_ctr", impl, size,
                      Throughput(size, [&] {
                        benchmark::DoNotOptimize(
                            accel ? AccelCtr(key, iv, data, 8)
                                  : PortableCtr(key, iv, data, 8));
                      })});
      // GHASH-dominated: authenticate `size` bytes of AAD, empty payload.
      rows.push_back({"ghash", impl, size,
                      Throughput(size, [&] {
                        Bytes t;
                        benchmark::DoNotOptimize(
                            GcmSeal(key, nonce, data, {}, &t));
                      })});
      rows.push_back({"gcm_seal", impl, size,
                      Throughput(size, [&] {
                        Bytes t;
                        benchmark::DoNotOptimize(
                            GcmSeal(key, nonce, {}, data, &t));
                      })});
      rows.push_back({"gcm_open", impl, size,
                      Throughput(size, [&] {
                        benchmark::DoNotOptimize(
                            GcmOpen(key, nonce, {}, ct, tag));
                      })});
    }
  }
  ResetAeadImpl();

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("FAIL: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"crypto\",\n  \"unit\": \"GiB/s\",\n");
  std::fprintf(f, "  \"aes_accel_available\": %s,\n",
               CpuHasAesClmul() ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"primitive\": \"%s\", \"impl\": \"%s\", "
                 "\"size_bytes\": %zu, \"gib_per_s\": %.4f}%s\n",
                 rows[i].primitive, rows[i].impl, rows[i].size, rows[i].gib_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  for (const JsonRow& r : rows) {
    std::printf("%-9s %-12s %8zu B  %8.3f GiB/s\n", r.primitive, r.impl,
                r.size, r.gib_s);
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------
// google-benchmark suite.
// ---------------------------------------------------------------------

void BM_Sha256(benchmark::State& state) {
  Bytes data = BenchRng().NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256Digest(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  Bytes key = BenchRng().NextBytes(16);
  Bytes data = BenchRng().NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_AesCtrEncrypt(benchmark::State& state) {
  Bytes key = BenchRng().NextBytes(16);
  Bytes iv = FreshIv(BenchRng());
  Bytes data = BenchRng().NextBytes(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CtrEncrypt(key, iv, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtrEncrypt)->Arg(4096)->Arg(1 << 20);

void BM_GcmSeal(benchmark::State& state) {
  // range(1): 0 = portable, 1 = accelerated.
  bool accel = state.range(1) != 0;
  if (accel && !AesAccelAvailable()) {
    state.SkipWithError("CPU lacks AES-NI/PCLMUL");
    return;
  }
  ForceAeadImpl(accel ? AeadImpl::kAccelerated : AeadImpl::kPortable);
  Bytes key = BenchRng().NextBytes(16);
  Bytes nonce = BenchRng().NextBytes(kAeadNonceSize);
  Bytes data = BenchRng().NextBytes(state.range(0));
  for (auto _ : state) {
    Bytes tag;
    benchmark::DoNotOptimize(GcmSeal(key, nonce, {}, data, &tag));
  }
  ResetAeadImpl();
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmSeal)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_GcmOpen(benchmark::State& state) {
  bool accel = state.range(1) != 0;
  if (accel && !AesAccelAvailable()) {
    state.SkipWithError("CPU lacks AES-NI/PCLMUL");
    return;
  }
  ForceAeadImpl(accel ? AeadImpl::kAccelerated : AeadImpl::kPortable);
  Bytes key = BenchRng().NextBytes(16);
  Bytes nonce = BenchRng().NextBytes(kAeadNonceSize);
  Bytes data = BenchRng().NextBytes(state.range(0));
  Bytes tag;
  Bytes ct = GcmSeal(key, nonce, {}, data, &tag);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GcmOpen(key, nonce, {}, ct, tag));
  }
  ResetAeadImpl();
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GcmOpen)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({1 << 20, 0})
    ->Args({1 << 20, 1});

void BM_RsaKeygen512(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateRsaKeyPair(512, BenchRng()));
  }
}
BENCHMARK(BM_RsaKeygen512);

void BM_Rsa2048PublicOp(benchmark::State& state) {
  Bytes msg = BenchRng().NextBytes(100);
  for (auto _ : state) {
    auto ct = RsaEncryptBlock(Rsa2048().pub, msg, BenchRng());
    benchmark::DoNotOptimize(ct);
  }
}
BENCHMARK(BM_Rsa2048PublicOp);

void BM_Rsa2048PrivateOp(benchmark::State& state) {
  Bytes msg = BenchRng().NextBytes(100);
  auto ct = RsaEncryptBlock(Rsa2048().pub, msg, BenchRng());
  for (auto _ : state) {
    auto pt = RsaDecryptBlock(Rsa2048().priv, *ct);
    benchmark::DoNotOptimize(pt);
  }
}
BENCHMARK(BM_Rsa2048PrivateOp);

void BM_EsignSubstituteSign(benchmark::State& state) {
  // RSA-512 signatures stand in for ESIGN (paper: "over an order of
  // magnitude faster" than RSA-2048 — compare with BM_Rsa2048PrivateOp).
  Bytes msg = BenchRng().NextBytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaSign(Rsa512().priv, msg));
  }
}
BENCHMARK(BM_EsignSubstituteSign);

void BM_EsignSubstituteVerify(benchmark::State& state) {
  Bytes msg = BenchRng().NextBytes(256);
  Bytes sig = RsaSign(Rsa512().priv, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RsaVerify(Rsa512().pub, msg, sig));
  }
}
BENCHMARK(BM_EsignSubstituteVerify);

}  // namespace
}  // namespace sharoes::crypto

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--self-check") == 0) {
      return sharoes::crypto::SelfCheck();
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      return sharoes::crypto::WriteJson(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
