// Ablation (the experiment the paper defers to [6], §V-D: "additional
// experimental analysis of SHAROES with varying network characteristics"):
// Create-And-List across link profiles from home DSL to LAN. As the
// network gets faster, crypto costs surface: SHAROES' symmetric-key
// overhead stays small while PUB-OPT's private-key ops come to dominate.
//
// Second experiment (read round trips): the batched read path — coalesced
// path resolution plus readahead windows — against the one-get-per-round-
// trip wire behaviour, on the paper's 45 ms DSL link where round trips
// dominate reads. Round-trip counts come from the simulated transport and
// are fully deterministic, so CI gates on the ratios (BENCH_read_rtt.json).

#include <cassert>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"
#include "workload/create_list.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

struct LinkProfile {
  const char* name;
  net::NetworkModel model;
};

void Run() {
  Heading("Network sweep ablation: Create-And-List LIST phase (s)");
  const LinkProfile profiles[] = {
      {"DSL (paper)", net::NetworkModel::PaperDsl()},
      {"cable 5M/1M, 25ms", {25.0, 1'000'000, 5'000'000, 4.0}},
      {"T1 1.5M sym, 10ms", {10.0, 1'500'000, 1'500'000, 2.0}},
      {"metro 100M, 2ms", {2.0, 100'000'000, 100'000'000, 0.5}},
      {"LAN", net::NetworkModel::Lan()},
  };
  Table table({"link", "NO-ENC-MD-D", "SHAROES", "PUB-OPT",
               "SHAROES vs base", "PUB-OPT vs base"});
  for (const LinkProfile& p : profiles) {
    std::vector<double> list_secs;
    for (SystemVariant v : {SystemVariant::kNoEncMdD, SystemVariant::kSharoes,
                            SystemVariant::kPubOpt}) {
      BenchWorldOptions opts;
      opts.variant = v;
      opts.network = p.model;
      BenchWorld world(opts);
      CreateListParams params;
      CreateListResult r = RunCreateList(world, params);
      list_secs.push_back(r.list.total_s());
    }
    table.AddRow({p.name, Seconds(list_secs[0]), Seconds(list_secs[1]),
                  Seconds(list_secs[2]), Percent(list_secs[1], list_secs[0]),
                  Percent(list_secs[2], list_secs[0])});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the faster the link, the larger PUB-OPT's"
      " relative penalty (fixed 270 ms private-key op per stat), while"
      " SHAROES' symmetric overhead stays modest.\n");
}

/// One file in the cold-read mixes: where it lives and how many 4 KiB
/// data blocks it spans (content of n*4096 bytes yields exactly n blocks).
struct MixFile {
  std::string path;
  uint32_t blocks;
};

Bytes PatternBytes(size_t n, uint8_t salt) {
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<uint8_t>((i * 131 + salt) & 0xFF);
  }
  return b;
}

struct ReadRttMeasurement {
  uint64_t round_trips = 0;
  double network_s = 0;
  bool identical = true;
};

/// Provisions the files, drops every cache, then reads each file once
/// cold, checking contents byte-for-byte against what was written.
ReadRttMeasurement MeasureColdReads(bool batch_reads,
                                    const std::vector<std::string>& dirs,
                                    const std::vector<MixFile>& files) {
  BenchWorldOptions opts;
  opts.variant = SystemVariant::kSharoes;
  opts.network = net::NetworkModel::PaperDsl();
  opts.batch_reads = batch_reads;
  BenchWorld world(opts);
  core::CreateOptions dopts;
  dopts.mode = fs::Mode::FromOctal(0755);
  core::CreateOptions fopts;
  fopts.mode = fs::Mode::FromOctal(0644);
  for (const std::string& d : dirs) {
    Status s = world.client().Mkdir(d, dopts);
    assert(s.ok());
    (void)s;
  }
  uint8_t salt = 1;
  for (const MixFile& f : files) {
    Status s = world.client().Create(f.path, fopts);
    assert(s.ok());
    s = world.client().WriteFile(f.path,
                                 PatternBytes(f.blocks * size_t{4096}, salt++));
    assert(s.ok());
    (void)s;
  }
  world.Reset();  // Cold caches, zeroed clock and wire counters.

  ReadRttMeasurement m;
  uint64_t trips_before = world.transport().counters().round_trips;
  CostSnapshot cost = world.Measure([&] {
    uint8_t check_salt = 1;
    for (const MixFile& f : files) {
      auto content = world.client().Read(f.path);
      uint8_t want_salt = check_salt++;
      if (!content.ok() ||
          *content != PatternBytes(f.blocks * size_t{4096}, want_salt)) {
        m.identical = false;
      }
    }
  });
  m.round_trips = world.transport().counters().round_trips - trips_before;
  m.network_s = static_cast<double>(cost.network_ns()) / 1e9;
  return m;
}

void EmitScenario(obs::JsonObjectWriter* w, const char* key,
                  const ReadRttMeasurement& batched,
                  const ReadRttMeasurement& unbatched) {
  w->BeginObject(key);
  w->Field("batched_round_trips", batched.round_trips);
  w->Field("unbatched_round_trips", unbatched.round_trips);
  double ratio = batched.round_trips == 0
                     ? 0.0
                     : static_cast<double>(unbatched.round_trips) /
                           static_cast<double>(batched.round_trips);
  w->Field("round_trip_ratio", ratio);
  w->Field("batched_network_s", batched.network_s);
  w->Field("unbatched_network_s", unbatched.network_s);
  w->Field("contents_identical", batched.identical && unbatched.identical);
  w->EndObject();
}

void RunReadRtt() {
  Heading("Batched reads: round trips, cold cache, 45 ms DSL link");

  // Scenario 1: one 128-block sequential read (the paper's large-file
  // read shape). Batched: coalesced descent + readahead windows.
  std::vector<MixFile> seq = {{"/work/big.bin", 128}};
  ReadRttMeasurement seq_b = MeasureColdReads(true, {}, seq);
  ReadRttMeasurement seq_u = MeasureColdReads(false, {}, seq);

  // Scenario 2: an Andrew-flavoured cold read mix — a shallow source
  // tree of mostly-small files with one large artifact, every file read
  // once with cold caches (the benchmark's phase-4 shape).
  std::vector<std::string> dirs = {"/work/src", "/work/src/lib",
                                   "/work/src/lib/util"};
  std::vector<MixFile> mix = {
      {"/work/src/main.c", 1},      {"/work/src/parser.c", 2},
      {"/work/src/lib/io.c", 4},    {"/work/src/lib/table.c", 8},
      {"/work/src/lib/util/a.c", 1}, {"/work/src/lib/util/b.c", 2},
      {"/work/src/codegen.c", 16},  {"/work/src/objects.bin", 64},
  };
  ReadRttMeasurement mix_b = MeasureColdReads(true, dirs, mix);
  ReadRttMeasurement mix_u = MeasureColdReads(false, dirs, mix);

  Table table({"scenario", "batched RTs", "unbatched RTs", "ratio",
               "batched net (s)", "unbatched net (s)"});
  auto ratio_str = [](const ReadRttMeasurement& b,
                      const ReadRttMeasurement& u) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx",
                  b.round_trips == 0 ? 0.0
                                     : static_cast<double>(u.round_trips) /
                                           static_cast<double>(b.round_trips));
    return std::string(buf);
  };
  table.AddRow({"seq 128-block file", std::to_string(seq_b.round_trips),
                std::to_string(seq_u.round_trips), ratio_str(seq_b, seq_u),
                Seconds(seq_b.network_s), Seconds(seq_u.network_s)});
  table.AddRow({"andrew cold read mix", std::to_string(mix_b.round_trips),
                std::to_string(mix_u.round_trips), ratio_str(mix_b, mix_u),
                Seconds(mix_b.network_s), Seconds(mix_u.network_s)});
  table.Print();
  if (!seq_b.identical || !seq_u.identical || !mix_b.identical ||
      !mix_u.identical) {
    std::printf("ERROR: batched/unbatched read contents diverged\n");
  }

  obs::JsonObjectWriter w;
  w.Field("bench", "read_rtt");
  w.Field("network", "PaperDsl 45ms one-way");
  w.Field("readahead_blocks", static_cast<uint64_t>(32));
  EmitScenario(&w, "seq128", seq_b, seq_u);
  EmitScenario(&w, "andrew_read_mix", mix_b, mix_u);
  std::string json = w.Take();
  const char* path = "BENCH_read_rtt.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("  wrote %s\n", path);
  } else {
    std::printf("  could not write %s\n", path);
  }
}

// --- Write round trips (the write-behind mirror of RunReadRtt) --------

struct WriteRttMeasurement {
  uint64_t round_trips = 0;
  double network_s = 0;
  Bytes store;  // Final SSP store bytes (ObjectStore::Serialize).
};

/// The Andrew-flavoured write mix: scaffold a source tree, populate it,
/// churn attributes, rebuild and clean — every phase mutating, run
/// identically in the batched and per-op worlds so the stores they leave
/// behind must match byte for byte.
void RunWriteMixOps(core::FsClient& c) {
  core::CreateOptions dopts;
  dopts.mode = fs::Mode::FromOctal(0755);
  core::CreateOptions fopts;
  fopts.mode = fs::Mode::FromOctal(0644);
  auto check = [](const Status& s) {
    assert(s.ok());
    (void)s;
  };
  // Phase 1: MakeDir.
  std::vector<std::string> dirs = {"/work", "/work/src", "/work/lib",
                                   "/work/obj"};
  for (const std::string& d : dirs) {
    check(c.Mkdir(d, dopts));
  }
  // Phase 2: Copy — sources of one to four 4 KiB blocks.
  std::vector<std::string> sources;
  for (int i = 0; i < 8; ++i) {
    std::string path = (i < 5 ? "/work/src/f" : "/work/lib/f") +
                       std::to_string(i) + ".c";
    sources.push_back(path);
    check(c.Create(path, fopts));
    check(c.WriteFile(
        path, PatternBytes((1 + i % 4) * size_t{4096},
                           static_cast<uint8_t>(i + 1))));
  }
  // Phase 3: attribute churn (widening chmods: no revocation machinery).
  for (const std::string& path : sources) {
    check(c.Chmod(path, fs::Mode::FromOctal(0664)));
  }
  // Phase 5: ScanDir+Make — compile artifacts, then `make clean`.
  for (int i = 0; i < 4; ++i) {
    std::string path = "/work/obj/f" + std::to_string(i) + ".o";
    check(c.Create(path, fopts));
    check(c.WriteFile(path, PatternBytes(4096,
                                         static_cast<uint8_t>(0x60 + i))));
  }
  check(c.Rename("/work/src/f0.c", "/work/src/f0_old.c"));
  for (int i = 0; i < 4; ++i) {
    check(c.Unlink("/work/obj/f" + std::to_string(i) + ".o"));
  }
  check(c.Fsync());
}

WriteRttMeasurement MeasureWriteMix(size_t write_batch_ops,
                                    net::NetworkModel network) {
  BenchWorldOptions opts;
  opts.variant = SystemVariant::kSharoes;
  opts.network = network;
  opts.write_batch_ops = write_batch_ops;
  BenchWorld world(opts);
  // Warm the mount's root resolution so both worlds measure the mutation
  // phases, not the identical two-trip cold start.
  (void)world.client().Getattr("/");
  WriteRttMeasurement m;
  uint64_t trips_before = world.transport().counters().round_trips;
  CostSnapshot cost = world.Measure([&] { RunWriteMixOps(world.client()); });
  m.round_trips = world.transport().counters().round_trips - trips_before;
  m.network_s = static_cast<double>(cost.network_ns()) / 1e9;
  m.store = world.server().store().Serialize();
  return m;
}

void RunWriteRtt() {
  Heading("Batched writes: round trips, Andrew write mix, 45 ms DSL link");
  constexpr size_t kWriteBatchOps = 64;
  WriteRttMeasurement batched =
      MeasureWriteMix(kWriteBatchOps, net::NetworkModel::PaperDsl());
  WriteRttMeasurement unbatched =
      MeasureWriteMix(0, net::NetworkModel::PaperDsl());

  // Byte-identity is checked on a free link: inode mtimes are virtual-
  // clock stamps, and on a link with latency the two worlds reach each
  // write at different virtual times. On Zero() the clock advances only
  // with crypto work — identical in both worlds, because batching moves
  // RPC timing, never the order of client-side operations.
  WriteRttMeasurement zb = MeasureWriteMix(kWriteBatchOps,
                                           net::NetworkModel::Zero());
  WriteRttMeasurement zu = MeasureWriteMix(0, net::NetworkModel::Zero());
  bool identical = zb.store == zu.store &&
                   zb.round_trips == batched.round_trips &&
                   zu.round_trips == unbatched.round_trips;
  double ratio = batched.round_trips == 0
                     ? 0.0
                     : static_cast<double>(unbatched.round_trips) /
                           static_cast<double>(batched.round_trips);

  Table table({"scenario", "batched RTs", "unbatched RTs", "ratio",
               "batched net (s)", "unbatched net (s)"});
  char ratio_buf[32];
  std::snprintf(ratio_buf, sizeof(ratio_buf), "%.1fx", ratio);
  table.AddRow({"andrew write mix", std::to_string(batched.round_trips),
                std::to_string(unbatched.round_trips), ratio_buf,
                Seconds(batched.network_s), Seconds(unbatched.network_s)});
  table.Print();
  if (!identical) {
    std::printf("ERROR: batched/unbatched final stores diverged\n");
  }

  obs::JsonObjectWriter w;
  w.Field("bench", "write_rtt");
  w.Field("network", "PaperDsl 45ms one-way");
  w.Field("write_batch_ops", static_cast<uint64_t>(kWriteBatchOps));
  w.BeginObject("andrew_write_mix");
  w.Field("batched_round_trips", batched.round_trips);
  w.Field("unbatched_round_trips", unbatched.round_trips);
  w.Field("round_trip_ratio", ratio);
  w.Field("batched_network_s", batched.network_s);
  w.Field("unbatched_network_s", unbatched.network_s);
  w.Field("stores_identical", identical);
  w.EndObject();
  std::string json = w.Take();
  const char* path = "BENCH_write_rtt.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("  wrote %s\n", path);
  } else {
    std::printf("  could not write %s\n", path);
  }
}

}  // namespace
}  // namespace sharoes::workload

int main(int argc, char** argv) {
  bool read_rtt_only = false;
  bool write_rtt_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--read-rtt-only") == 0) read_rtt_only = true;
    if (std::strcmp(argv[i], "--write-rtt-only") == 0) write_rtt_only = true;
  }
  if (!read_rtt_only && !write_rtt_only) sharoes::workload::Run();
  if (!write_rtt_only) sharoes::workload::RunReadRtt();
  if (!read_rtt_only) sharoes::workload::RunWriteRtt();
  return 0;
}
