// Ablation (the experiment the paper defers to [6], §V-D: "additional
// experimental analysis of SHAROES with varying network characteristics"):
// Create-And-List across link profiles from home DSL to LAN. As the
// network gets faster, crypto costs surface: SHAROES' symmetric-key
// overhead stays small while PUB-OPT's private-key ops come to dominate.

#include <cstdio>

#include "workload/create_list.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

struct LinkProfile {
  const char* name;
  net::NetworkModel model;
};

void Run() {
  Heading("Network sweep ablation: Create-And-List LIST phase (s)");
  const LinkProfile profiles[] = {
      {"DSL (paper)", net::NetworkModel::PaperDsl()},
      {"cable 5M/1M, 25ms", {25.0, 1'000'000, 5'000'000, 4.0}},
      {"T1 1.5M sym, 10ms", {10.0, 1'500'000, 1'500'000, 2.0}},
      {"metro 100M, 2ms", {2.0, 100'000'000, 100'000'000, 0.5}},
      {"LAN", net::NetworkModel::Lan()},
  };
  Table table({"link", "NO-ENC-MD-D", "SHAROES", "PUB-OPT",
               "SHAROES vs base", "PUB-OPT vs base"});
  for (const LinkProfile& p : profiles) {
    std::vector<double> list_secs;
    for (SystemVariant v : {SystemVariant::kNoEncMdD, SystemVariant::kSharoes,
                            SystemVariant::kPubOpt}) {
      BenchWorldOptions opts;
      opts.variant = v;
      opts.network = p.model;
      BenchWorld world(opts);
      CreateListParams params;
      CreateListResult r = RunCreateList(world, params);
      list_secs.push_back(r.list.total_s());
    }
    table.AddRow({p.name, Seconds(list_secs[0]), Seconds(list_secs[1]),
                  Seconds(list_secs[2]), Percent(list_secs[1], list_secs[0]),
                  Percent(list_secs[2], list_secs[0])});
  }
  table.Print();
  std::printf(
      "\nExpected shape: the faster the link, the larger PUB-OPT's"
      " relative penalty (fixed 270 ms private-key op per stat), while"
      " SHAROES' symmetric overhead stays modest.\n");
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  return 0;
}
