// Open-loop SLO load harness (DESIGN.md §14): N client threads drive a
// live TcpSspDaemon over loopback with Poisson arrivals at a fixed
// offered rate, a Zipf-popular shared read set, and private per-thread
// write sets — then report p50/p99/p999 per op from the obs histograms
// and pull the daemon's own view of the run through the admin RPCs
// (kGetStats with a prefix, kGetTraces for slow-request timelines).
//
// Open-loop means arrivals are scheduled ahead of time and latency is
// measured from the *scheduled* arrival, not from when the client got
// around to sending: a stalled server inflates the tail instead of
// silently thinning the offered load (no coordinated omission).
//
// Two latency views per op:
//   latency_us  = completion - scheduled Poisson arrival (queueing incl.)
//   service_us  = completion - request start (the op itself)
//
// The harness double-checks the span layer's core invariant on its own
// captured slow requests: each timeline's per-phase durations must sum
// to within 10% of the measured end-to-end time (attribution_ok in
// BENCH_load.json).
//
// Defaults are sized for a 1-CPU CI container (see DESIGN.md §14: the
// absolute numbers are not the point; zero errors, achieved≈offered,
// and trustworthy attribution are).
//
// Usage:
//   bench_load [--seconds N] [--rate OPS_PER_S] [--clients N]
//              [--write-pct P] [--zipf S] [--shared-files K]
//              [--slow-us N] [--port P] [--cluster N] [--replicas K]
//              [--json]
//
// --port P drives an already-running external daemon instead of the
// in-process one (provisioning included — point it at an empty store).
// --cluster N starts N in-process daemons behind a placement ring
// (DESIGN.md §15) and drives them through per-thread ShardedChannels;
// --replicas K adds K-way replication with majority quorums (W = R =
// K/2+1). Cluster runs additionally report per-shard latency
// percentiles and the store-object imbalance ratio (max/min objects
// across daemons) under a "cluster" key in the JSON. After the timed
// run a cluster harness also executes a delete probe (quorum
// put+delete over a raw-key range) followed by one anti-entropy scrub
// pass per node, and reports the tombstone count the deletes left,
// what the scrubbers repaired and GC'd, and the post-scrub tombstone
// count (must be 0 on a healthy cluster) under the same "cluster" key.
// --json writes BENCH_load.json for the CI SLO gate.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/client.h"
#include "core/identity.h"
#include "core/migration.h"
#include "core/retrying_connection.h"
#include "core/sharded_channel.h"
#include "crypto/keys.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "ssp/placement.h"
#include "ssp/scrub.h"
#include "ssp/tcp_service.h"
#include "util/sim_clock.h"

namespace sharoes {
namespace {

constexpr fs::UserId kAlice = 100;
constexpr fs::GroupId kStaff = 500;
constexpr size_t kPrivateFiles = 8;   // Write targets per client thread.
constexpr size_t kFileBytes = 4096;   // One data block per file.

struct Options {
  double seconds = 4.0;
  double rate = 150.0;  // Total offered ops/s across all clients.
  int clients = 4;
  int write_pct = 30;
  double zipf_s = 1.1;
  int shared_files = 32;
  uint64_t slow_us = 2000;  // Low threshold: the harness *wants* captures.
  uint16_t port = 0;        // 0 = start an in-process daemon.
  int cluster = 0;          // >0 = start that many sharded daemons.
  int replicas = 1;         // K; quorums are majority (W = R = K/2+1).
  bool json = false;
};

Bytes PatternBytes(size_t n, uint32_t salt) {
  Bytes b(n);
  for (size_t i = 0; i < n; ++i) {
    b[i] = static_cast<uint8_t>((i * 131 + salt * 17) & 0xFF);
  }
  return b;
}

/// Zipf(s) sampler over [0, n): precomputed CDF + binary search.
class ZipfSampler {
 public:
  ZipfSampler(int n, double s) : cdf_(static_cast<size_t>(n)) {
    double acc = 0;
    for (int i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[static_cast<size_t>(i)] = acc;
    }
    for (double& c : cdf_) c /= acc;
  }
  int Sample(std::mt19937_64& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

std::unique_ptr<crypto::CryptoEngine> MakeEngine(SimClock* clock,
                                                 uint64_t seed) {
  crypto::CryptoEngineOptions opts;
  opts.cost_model = crypto::CryptoCostModel::Zero();
  opts.signing_key_bits = 512;
  opts.rng_seed = seed;
  return std::make_unique<crypto::CryptoEngine>(clock, opts);
}

core::RetryingConnection::ChannelFactory TcpFactory(uint16_t port) {
  return [port]() -> Result<std::unique_ptr<ssp::SspChannel>> {
    net::TcpTimeouts timeouts{/*connect_ms=*/2000, /*send_ms=*/5000,
                              /*recv_ms=*/5000};
    auto channel = ssp::TcpSspChannel::Connect("127.0.0.1", port, timeouts);
    if (!channel.ok()) return channel.status();
    return std::unique_ptr<ssp::SspChannel>(std::move(*channel));
  };
}

/// `--cluster N`: N in-process daemons behind one placement ring. The
/// ring must outlive the servers (each serving thread checks ownership
/// against it per request), so the harness owns both.
struct ClusterHarness {
  ssp::ClusterConfig config;
  std::unique_ptr<ssp::PlacementRing> ring;
  std::vector<std::unique_ptr<ssp::SspServer>> servers;
  std::vector<std::unique_ptr<ssp::TcpSspDaemon>> daemons;
};

Result<std::unique_ptr<ClusterHarness>> StartCluster(int nodes,
                                                     int replicas) {
  auto h = std::make_unique<ClusterHarness>();
  uint32_t k = static_cast<uint32_t>(
      std::min(replicas, nodes) < 1 ? 1 : std::min(replicas, nodes));
  h->config.replication = k;
  h->config.write_quorum = k / 2 + 1;  // Majority quorums: R + W > K
  h->config.read_quorum = k / 2 + 1;   // for every K.
  for (int i = 0; i < nodes; ++i) {
    h->servers.push_back(std::make_unique<ssp::SspServer>());
    // Cluster mode always runs with delete tombstones, exactly like
    // `sharoes_sspd --cluster` (quorum deletes need them to stick).
    h->servers.back()->store().set_tombstones_enabled(true);
    auto daemon = ssp::TcpSspDaemon::Start(h->servers.back().get(), 0);
    if (!daemon.ok()) return daemon.status();
    h->config.nodes.push_back(ssp::ClusterNode{
        static_cast<uint32_t>(i), "127.0.0.1", (*daemon)->port()});
    h->daemons.push_back(std::move(*daemon));
  }
  auto ring = ssp::PlacementRing::Build(h->config);
  if (!ring.ok()) return ring.status();
  h->ring = std::make_unique<ssp::PlacementRing>(std::move(*ring));
  for (int i = 0; i < nodes; ++i) {
    h->servers[static_cast<size_t>(i)]->set_placement(
        h->ring.get(), static_cast<uint32_t>(i));
  }
  return h;
}

std::unique_ptr<ssp::SspChannel> MakeShardedChannel(
    const ClusterHarness& cluster, uint64_t seed) {
  core::ShardedChannelOptions sopts;
  sopts.seed = seed;
  auto channel = core::ShardedChannel::Create(
      cluster.config,
      [](const ssp::ClusterNode& node) { return TcpFactory(node.port); },
      sopts);
  if (!channel.ok()) {
    std::fprintf(stderr, "bench_load: sharded channel: %s\n",
                 channel.status().ToString().c_str());
    return nullptr;
  }
  return std::move(*channel);
}

/// The enterprise side, provisioned over the wire into the daemon.
struct Enterprise {
  SimClock clock;
  std::unique_ptr<crypto::CryptoEngine> engine;
  core::IdentityDirectory identity;
  crypto::RsaPrivateKey alice_key;
};

std::unique_ptr<Enterprise> Provision(ssp::SspChannel* admin) {
  auto ent = std::make_unique<Enterprise>();
  ent->engine = MakeEngine(&ent->clock, 4242);
  core::Provisioner::Options popts;
  popts.user_key_bits = 512;
  core::Provisioner prov(&ent->identity, /*server=*/nullptr,
                         ent->engine.get(), popts);
  prov.set_remote_channel(admin);
  auto alice = prov.CreateUser(kAlice, "alice");
  if (!alice.ok()) return nullptr;
  ent->alice_key = alice->priv;
  if (!prov.CreateGroup(kStaff, "staff", {kAlice}).ok()) return nullptr;
  core::LocalNode root = core::LocalNode::Dir("", kAlice, kStaff,
                                              fs::Mode::FromOctal(0755));
  if (!prov.Migrate(root).ok()) return nullptr;
  return ent;
}

std::unique_ptr<core::SharoesClient> MakeClient(Enterprise* ent,
                                                ssp::SspChannel* channel,
                                                crypto::CryptoEngine* engine) {
  core::ClientOptions copts;
  copts.default_group = kStaff;
  return std::make_unique<core::SharoesClient>(
      kAlice, ent->alice_key, &ent->identity, channel, engine, copts);
}

/// Per-thread tallies; percentiles come from the shared obs histograms.
struct ThreadResult {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t errors = 0;
  uint64_t max_latency_us = 0;
};

struct LoadMetrics {
  obs::Histogram* read_latency;
  obs::Histogram* read_service;
  obs::Histogram* write_latency;
  obs::Histogram* write_service;
  /// Cluster runs: end-to-end latency per primary shard (both ops).
  std::vector<obs::Histogram*> shard_latency;
};

LoadMetrics RegisterLoadMetrics(int shards) {
  auto& reg = obs::MetricsRegistry::Global();
  LoadMetrics m{reg.histogram("bench.load.latency_us.read"),
                reg.histogram("bench.load.service_us.read"),
                reg.histogram("bench.load.latency_us.write"),
                reg.histogram("bench.load.service_us.write"),
                {}};
  for (int k = 0; k < shards; ++k) {
    m.shard_latency.push_back(
        reg.histogram("bench.load.shard" + std::to_string(k) +
                      ".latency_us"));
  }
  return m;
}

/// Start-line barrier: every thread provisions its private files, checks
/// in, and blocks until the main thread fires the gun — so the measured
/// window contains load, not setup.
class StartGate {
 public:
  explicit StartGate(int n) : waiting_for_(n) {}
  void CheckIn() {
    std::unique_lock<std::mutex> lock(mu_);
    if (--waiting_for_ == 0) ready_.notify_all();
    go_.wait(lock, [&] { return started_; });
  }
  void WaitReady() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return waiting_for_ == 0; });
  }
  void Fire() {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    go_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable ready_;
  std::condition_variable go_;
  int waiting_for_;
  bool started_ = false;
};

void RunClientThread(int t, const Options& opt, uint16_t port,
                     const ClusterHarness* cluster,
                     const std::vector<int>* shard_of_shared,
                     Enterprise* ent, const ZipfSampler* zipf,
                     const LoadMetrics* metrics, StartGate* gate,
                     std::chrono::steady_clock::time_point* start_out,
                     ThreadResult* out) {
  SimClock clock;
  auto engine = MakeEngine(&clock, 1000 + static_cast<uint64_t>(t));
  std::unique_ptr<ssp::SspChannel> channel;
  if (cluster != nullptr) {
    channel = MakeShardedChannel(*cluster, 9000 + static_cast<uint64_t>(t));
  } else {
    core::RetryOptions retry;
    retry.seed = 9000 + static_cast<uint64_t>(t);
    channel = std::make_unique<core::RetryingConnection>(TcpFactory(port),
                                                         retry);
  }
  if (channel == nullptr) {
    out->errors += 1;
    gate->CheckIn();
    return;
  }
  auto client = MakeClient(ent, channel.get(), engine.get());
  if (!client->Mount().ok()) {
    out->errors += 1;
    gate->CheckIn();
    return;
  }
  // Private write set: /p<t>/f0..f7, one block each.
  std::string dir = "/p" + std::to_string(t);
  core::CreateOptions dopts;
  dopts.mode = fs::Mode::FromOctal(0755);
  core::CreateOptions fopts;
  fopts.mode = fs::Mode::FromOctal(0644);
  bool setup_ok = client->Mkdir(dir, dopts).ok();
  std::vector<int> shard_of_private(kPrivateFiles, -1);
  for (size_t j = 0; setup_ok && j < kPrivateFiles; ++j) {
    std::string path = dir + "/f" + std::to_string(j);
    setup_ok = client->Create(path, fopts).ok() &&
               client->WriteFile(
                         path, PatternBytes(kFileBytes,
                                            static_cast<uint32_t>(t * 100 +
                                                                  j)))
                   .ok();
    if (setup_ok && cluster != nullptr) {
      // Write latency is attributed to the file's primary shard (the
      // write itself fans out to all K replicas).
      auto attrs = client->Getattr(path);
      if (attrs.ok()) {
        shard_of_private[j] = static_cast<int>(
            cluster->ring->PrimaryIndexFor(attrs->inode));
      }
    }
  }
  gate->CheckIn();
  if (!setup_ok) {
    out->errors += 1;
    return;
  }

  const auto start = *start_out;
  const auto deadline =
      start + std::chrono::microseconds(
                  static_cast<int64_t>(opt.seconds * 1e6));
  std::mt19937_64 rng(77 + static_cast<uint64_t>(t));
  const double per_thread_rate = opt.rate / opt.clients;
  std::exponential_distribution<double> gap(per_thread_rate);
  std::uniform_int_distribution<int> mix(0, 99);
  auto arrival = start;
  uint64_t iter = 0;
  while (true) {
    arrival += std::chrono::microseconds(
        static_cast<int64_t>(gap(rng) * 1e6));
    if (arrival >= deadline) break;
    std::this_thread::sleep_until(arrival);
    const bool is_write = mix(rng) < opt.write_pct;
    const auto op_start = std::chrono::steady_clock::now();
    Status s = Status::OK();
    int shard = -1;
    if (is_write) {
      const size_t slot = iter % kPrivateFiles;
      std::string path = dir + "/f" + std::to_string(slot);
      s = client->WriteFile(
          path, PatternBytes(kFileBytes,
                             static_cast<uint32_t>(t * 100 + iter)));
      shard = shard_of_private[slot];
    } else {
      const int pick = zipf->Sample(rng);
      std::string path = "/shared/f" + std::to_string(pick);
      // Evict the object (keep the dcache warm) so every read refetches
      // metadata + data from the daemon instead of the client cache.
      (void)client->EvictPath(path);
      auto content = client->Read(path);
      s = content.status();
      if (shard_of_shared != nullptr) {
        shard = (*shard_of_shared)[static_cast<size_t>(pick)];
      }
    }
    const auto end = std::chrono::steady_clock::now();
    ++iter;
    if (!s.ok()) {
      out->errors += 1;
      continue;
    }
    const uint64_t latency_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - arrival)
            .count());
    const uint64_t service_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - op_start)
            .count());
    out->max_latency_us = std::max(out->max_latency_us, latency_us);
    if (shard >= 0 &&
        shard < static_cast<int>(metrics->shard_latency.size())) {
      metrics->shard_latency[static_cast<size_t>(shard)]->Record(latency_us);
    }
    if (is_write) {
      out->writes += 1;
      metrics->write_latency->Record(latency_us);
      metrics->write_service->Record(service_us);
    } else {
      out->reads += 1;
      metrics->read_latency->Record(latency_us);
      metrics->read_service->Record(service_us);
    }
  }
}

/// Periodic kGetStats/kGetTraces scraper — the operator loop the admin
/// RPCs exist for, run against the live daemon while it serves load.
void RunScraper(uint16_t port, std::atomic<bool>* stop, uint64_t* scrapes,
                std::string* last_stats, std::string* last_traces) {
  auto channel = ssp::TcpSspChannel::Connect("127.0.0.1", port);
  if (!channel.ok()) return;
  while (!stop->load(std::memory_order_acquire)) {
    auto stats = (*channel)->Call(ssp::Request::GetStats("ssp."));
    auto traces = (*channel)->Call(ssp::Request::GetTraces());
    if (stats.ok() && stats->ok() && traces.ok() && traces->ok()) {
      ++*scrapes;
      last_stats->assign(stats->payload.begin(), stats->payload.end());
      last_traces->assign(traces->payload.begin(), traces->payload.end());
    }
    for (int i = 0; i < 5 && !stop->load(std::memory_order_acquire); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

struct Attribution {
  uint64_t checked = 0;
  uint64_t ok = 0;
  double worst_off_pct = 0;  // Largest |phase_sum - total| / total seen.
};

/// The acceptance check: every captured timeline's phase durations must
/// sum to within 10% of its measured end-to-end time. Exclusive-time
/// attribution makes this hold by construction (only µs truncation per
/// phase leaks); the harness verifies it on live data anyway.
Attribution CheckAttribution(const obs::SpanCollector::Snapshot& snap) {
  Attribution a;
  auto check = [&](const obs::SpanRecord& r) {
    if (r.total_us == 0) return;
    a.checked += 1;
    const double off =
        std::abs(static_cast<double>(r.PhaseSumUs()) -
                 static_cast<double>(r.total_us)) /
        static_cast<double>(r.total_us);
    a.worst_off_pct = std::max(a.worst_off_pct, off * 100.0);
    if (off <= 0.10) a.ok += 1;
  };
  for (const auto& r : snap.slow) check(r);
  for (const auto& r : snap.slowest) check(r);
  return a;
}

void EmitOp(obs::JsonObjectWriter* w, const char* key, uint64_t count,
            const obs::HistogramSnapshot& latency,
            const obs::HistogramSnapshot& service) {
  w->BeginObject(key);
  w->Field("count", count);
  w->BeginObject("latency_us");
  w->Field("p50", latency.Percentile(0.50));
  w->Field("p99", latency.Percentile(0.99));
  w->Field("p999", latency.Percentile(0.999));
  w->Field("mean", latency.Mean());
  w->Field("max", latency.max);
  w->EndObject();
  w->BeginObject("service_us");
  w->Field("p50", service.Percentile(0.50));
  w->Field("p99", service.Percentile(0.99));
  w->Field("p999", service.Percentile(0.999));
  w->Field("mean", service.Mean());
  w->Field("max", service.max);
  w->EndObject();
  w->EndObject();
}

int Run(const Options& opt) {
  // 1. Live daemons: one in-process by default, N sharded ones behind a
  // placement ring via --cluster, an external one via --port. All the
  // in-process modes share our process's metrics registry and span
  // collector.
  ssp::SspServer server;
  std::unique_ptr<ssp::TcpSspDaemon> daemon;
  std::unique_ptr<ClusterHarness> cluster;
  uint16_t port = opt.port;
  if (opt.cluster > 0) {
    auto started = StartCluster(opt.cluster, opt.replicas);
    if (!started.ok()) {
      std::fprintf(stderr, "bench_load: cluster: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    cluster = std::move(*started);
    // Admin ops are pinned to node 0; the scraper talks to it directly.
    port = cluster->config.nodes[0].port;
  } else if (port == 0) {
    auto started = ssp::TcpSspDaemon::Start(&server, 0);
    if (!started.ok()) {
      std::fprintf(stderr, "bench_load: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    daemon = std::move(*started);
    port = daemon->port();
  }
  auto make_channel = [&]() -> std::unique_ptr<ssp::SspChannel> {
    if (cluster != nullptr) return MakeShardedChannel(*cluster, 7);
    return std::make_unique<core::RetryingConnection>(TcpFactory(port),
                                                      core::RetryOptions{});
  };

  // 2. Provision the enterprise and the shared read tree — in cluster
  // mode through a sharded channel, so every object lands on (all of)
  // its owning replicas and nothing trips kWrongShard later.
  std::unique_ptr<Enterprise> ent;
  {
    auto admin = make_channel();
    if (admin == nullptr) return 1;
    ent = Provision(admin.get());
  }
  if (ent == nullptr) {
    std::fprintf(stderr, "bench_load: provisioning failed\n");
    return 1;
  }
  std::vector<int> shard_of_shared;
  {
    SimClock clock;
    auto engine = MakeEngine(&clock, 7);
    auto setup_channel = make_channel();
    if (setup_channel == nullptr) return 1;
    auto setup = MakeClient(ent.get(), setup_channel.get(), engine.get());
    if (!setup->Mount().ok()) {
      std::fprintf(stderr, "bench_load: mount failed\n");
      return 1;
    }
    core::CreateOptions dopts;
    dopts.mode = fs::Mode::FromOctal(0755);
    core::CreateOptions fopts;
    fopts.mode = fs::Mode::FromOctal(0644);
    if (!setup->Mkdir("/shared", dopts).ok()) {
      std::fprintf(stderr, "bench_load: setup failed\n");
      return 1;
    }
    for (int i = 0; i < opt.shared_files; ++i) {
      std::string path = "/shared/f" + std::to_string(i);
      if (!setup->Create(path, fopts).ok() ||
          !setup->WriteFile(path,
                            PatternBytes(kFileBytes,
                                         static_cast<uint32_t>(i)))
               .ok()) {
        std::fprintf(stderr, "bench_load: setup failed at %s\n",
                     path.c_str());
        return 1;
      }
      if (cluster != nullptr) {
        auto attrs = setup->Getattr(path);
        if (!attrs.ok()) {
          std::fprintf(stderr, "bench_load: getattr failed at %s\n",
                       path.c_str());
          return 1;
        }
        shard_of_shared.push_back(static_cast<int>(
            cluster->ring->PrimaryIndexFor(attrs->inode)));
      }
    }
  }

  // 3. Launch the clients; drop setup-phase spans and arm a low slow
  // threshold so the run captures real timelines.
  ZipfSampler zipf(opt.shared_files, opt.zipf_s);
  LoadMetrics metrics = RegisterLoadMetrics(opt.cluster);
  StartGate gate(opt.clients);
  std::vector<ThreadResult> results(static_cast<size_t>(opt.clients));
  std::chrono::steady_clock::time_point start_time;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(opt.clients));
  for (int t = 0; t < opt.clients; ++t) {
    threads.emplace_back(RunClientThread, t, std::cref(opt), port,
                         cluster.get(),
                         cluster != nullptr ? &shard_of_shared : nullptr,
                         ent.get(), &zipf, &metrics, &gate, &start_time,
                         &results[static_cast<size_t>(t)]);
  }
  gate.WaitReady();
  obs::SpanCollector::Global().Reset();
  const uint64_t prev_threshold = obs::SlowRequestThresholdUs();
  obs::SetSlowRequestThresholdUs(opt.slow_us);
  start_time = std::chrono::steady_clock::now();
  gate.Fire();

  std::atomic<bool> stop_scraper{false};
  uint64_t scrapes = 0;
  std::string last_stats, last_traces;
  std::thread scraper(RunScraper, port, &stop_scraper, &scrapes, &last_stats,
                      &last_traces);

  for (auto& th : threads) th.join();
  const auto wall_end = std::chrono::steady_clock::now();
  stop_scraper.store(true, std::memory_order_release);
  scraper.join();
  obs::SetSlowRequestThresholdUs(prev_threshold);

  // 4. Cluster runs: delete probe + anti-entropy pass. The timed
  // workload never deletes, so this exercises the tombstone path on
  // its own raw-key range: quorum put+delete leaves one tombstone per
  // replica, then one scrub pass per node (what each daemon's
  // `--scrub-interval-s` thread does) must GC them all — every replica
  // is healthy, so a full-quorum pass sees tombstone-or-missing
  // everywhere.
  constexpr uint64_t kDeleteProbeBase = 1ull << 30;  // Clear of real inodes.
  constexpr uint64_t kDeleteProbeKeys = 16;
  uint64_t probe_errors = 0;
  uint64_t tombstones_after_deletes = 0, tombstones_after_scrub = 0;
  uint64_t scrub_repaired = 0, scrub_tombstones_gc = 0;
  uint64_t scrub_unreachable = 0;
  if (cluster != nullptr) {
    auto probe = MakeShardedChannel(*cluster, 4242);
    if (probe == nullptr) {
      probe_errors += kDeleteProbeKeys;
    } else {
      for (uint64_t k = 0; k < kDeleteProbeKeys; ++k) {
        const uint64_t inode = kDeleteProbeBase + k;
        auto put = probe->Call(ssp::Request::PutData(
            inode, 0, PatternBytes(64, static_cast<uint32_t>(k))));
        if (!put.ok() || put->status != ssp::RespStatus::kOk) {
          probe_errors += 1;
          continue;
        }
        auto del = probe->Call(ssp::Request::DeleteData(inode, 0));
        if (!del.ok() || del->status != ssp::RespStatus::kOk) {
          probe_errors += 1;
        }
      }
    }
    for (auto& s : cluster->servers) {
      tombstones_after_deletes += s->store().Stats().tombstone_count;
    }
    // Two rounds: if a quorum delete left one replica behind, round one
    // repairs the straggler (blocking that node's GC), round two
    // collects the repaired tombstone. Totals stay deterministic — each
    // tombstone is GC'd exactly once.
    for (int round = 0; round < 2; ++round) {
      for (size_t k = 0; k < cluster->servers.size(); ++k) {
        ssp::Scrubber scrubber(
            cluster->servers[k].get(), cluster->ring.get(),
            static_cast<uint32_t>(k),
            [](const ssp::ClusterNode& node)
                -> Result<std::unique_ptr<ssp::SspChannel>> {
              return TcpFactory(node.port)();
            });
        ssp::ScrubPass pass = scrubber.RunOnce();
        scrub_repaired += pass.repaired;
        scrub_tombstones_gc += pass.tombstones_gc;
        scrub_unreachable += pass.unreachable;
      }
    }
    for (auto& s : cluster->servers) {
      tombstones_after_scrub += s->store().Stats().tombstone_count;
    }
  }

  // 5. Tally, check attribution, report.
  const double wall_s =
      std::chrono::duration<double>(wall_end - start_time).count();
  uint64_t reads = 0, writes = 0, errors = 0;
  for (const auto& r : results) {
    reads += r.reads;
    writes += r.writes;
    errors += r.errors;
  }
  errors += probe_errors;  // A failed quorum delete is a run failure too.
  const double achieved = (reads + writes) / wall_s;
  auto read_latency = metrics.read_latency->Snapshot();
  auto read_service = metrics.read_service->Snapshot();
  auto write_latency = metrics.write_latency->Snapshot();
  auto write_service = metrics.write_service->Snapshot();
  auto snap = obs::SpanCollector::Global().Snap();
  Attribution attr = CheckAttribution(snap);
  const bool attribution_ok = attr.checked > 0 && attr.ok == attr.checked;

  std::printf(
      "bench_load: %.1fs at %d clients, offered %.0f op/s "
      "(%d%% writes, zipf %.2f over %d shared files)\n",
      wall_s, opt.clients, opt.rate, opt.write_pct, opt.zipf_s,
      opt.shared_files);
  std::printf("  achieved %.1f op/s (%llu reads, %llu writes, %llu errors)\n",
              achieved, static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(writes),
              static_cast<unsigned long long>(errors));
  auto print_op = [](const char* name, const obs::HistogramSnapshot& lat,
                     const obs::HistogramSnapshot& svc) {
    std::printf(
        "  %-5s latency p50 %6llu  p99 %6llu  p999 %6llu µs"
        "   service p50 %6llu  p99 %6llu  p999 %6llu µs\n",
        name, static_cast<unsigned long long>(lat.Percentile(0.50)),
        static_cast<unsigned long long>(lat.Percentile(0.99)),
        static_cast<unsigned long long>(lat.Percentile(0.999)),
        static_cast<unsigned long long>(svc.Percentile(0.50)),
        static_cast<unsigned long long>(svc.Percentile(0.99)),
        static_cast<unsigned long long>(svc.Percentile(0.999)));
  };
  print_op("read", read_latency, read_service);
  print_op("write", write_latency, write_service);
  std::vector<obs::HistogramSnapshot> shard_snaps;
  std::vector<uint64_t> shard_objects;
  double imbalance = 0;
  if (cluster != nullptr) {
    uint64_t min_objects = 0, max_objects = 0;
    for (size_t k = 0; k < cluster->servers.size(); ++k) {
      shard_snaps.push_back(metrics.shard_latency[k]->Snapshot());
      const uint64_t objects = cluster->servers[k]->store().Stats().object_count;
      shard_objects.push_back(objects);
      min_objects = k == 0 ? objects : std::min(min_objects, objects);
      max_objects = std::max(max_objects, objects);
    }
    imbalance = min_objects > 0
                    ? static_cast<double>(max_objects) /
                          static_cast<double>(min_objects)
                    : static_cast<double>(max_objects);
    std::printf(
        "  cluster: %d nodes, K=%u W=%u R=%u, object imbalance %.2fx\n",
        opt.cluster, cluster->config.replication,
        cluster->config.write_quorum, cluster->config.read_quorum,
        imbalance);
    for (size_t k = 0; k < shard_snaps.size(); ++k) {
      std::printf(
          "    shard %zu: %6llu objects, %6llu ops, latency p50 %6llu "
          "p99 %6llu µs\n",
          k, static_cast<unsigned long long>(shard_objects[k]),
          static_cast<unsigned long long>(shard_snaps[k].count),
          static_cast<unsigned long long>(shard_snaps[k].Percentile(0.50)),
          static_cast<unsigned long long>(shard_snaps[k].Percentile(0.99)));
    }
    std::printf(
        "    delete probe: %llu keys -> %llu tombstones; scrub repaired "
        "%llu, GC'd %llu, %llu left (%llu unreachable)\n",
        static_cast<unsigned long long>(kDeleteProbeKeys),
        static_cast<unsigned long long>(tombstones_after_deletes),
        static_cast<unsigned long long>(scrub_repaired),
        static_cast<unsigned long long>(scrub_tombstones_gc),
        static_cast<unsigned long long>(tombstones_after_scrub),
        static_cast<unsigned long long>(scrub_unreachable));
  }
  std::printf(
      "  spans: %zu slow (threshold %llu µs), %zu slowest-ever; "
      "attribution %llu/%llu within 10%% (worst off %.2f%%)\n",
      snap.slow.size(), static_cast<unsigned long long>(opt.slow_us),
      snap.slowest.size(), static_cast<unsigned long long>(attr.ok),
      static_cast<unsigned long long>(attr.checked), attr.worst_off_pct);
  std::printf("  %llu live kGetStats/kGetTraces scrapes during the run\n",
              static_cast<unsigned long long>(scrapes));
  if (!attribution_ok) {
    std::printf("ERROR: span attribution check failed\n");
  }

  if (opt.json) {
    obs::JsonObjectWriter w;
    w.Field("bench", "load");
    w.Field("mode", cluster != nullptr
                        ? "cluster"
                        : (daemon != nullptr ? "inprocess" : "external"));
    w.Field("duration_s", wall_s);
    w.Field("offered_rate", opt.rate);
    w.Field("achieved_rate", achieved);
    w.Field("clients", static_cast<uint64_t>(opt.clients));
    w.Field("write_pct", static_cast<uint64_t>(opt.write_pct));
    w.Field("zipf_s", opt.zipf_s);
    w.Field("shared_files", static_cast<uint64_t>(opt.shared_files));
    w.Field("slow_threshold_us", opt.slow_us);
    w.Field("errors", errors);
    w.BeginObject("ops");
    EmitOp(&w, "read", reads, read_latency, read_service);
    EmitOp(&w, "write", writes, write_latency, write_service);
    w.EndObject();
    if (cluster != nullptr) {
      w.BeginObject("cluster");
      w.Field("nodes", static_cast<uint64_t>(opt.cluster));
      w.Field("replication",
              static_cast<uint64_t>(cluster->config.replication));
      w.Field("write_quorum",
              static_cast<uint64_t>(cluster->config.write_quorum));
      w.Field("read_quorum",
              static_cast<uint64_t>(cluster->config.read_quorum));
      w.Field("imbalance_ratio", imbalance);
      w.Field("delete_probe_keys", kDeleteProbeKeys);
      w.Field("tombstones_after_deletes", tombstones_after_deletes);
      w.Field("scrub_repaired", scrub_repaired);
      w.Field("scrub_tombstones_gc", scrub_tombstones_gc);
      w.Field("scrub_unreachable", scrub_unreachable);
      w.Field("tombstones_after_scrub", tombstones_after_scrub);
      for (size_t k = 0; k < shard_snaps.size(); ++k) {
        w.BeginObject("shard" + std::to_string(k));
        w.Field("objects", shard_objects[k]);
        w.Field("ops", shard_snaps[k].count);
        w.Field("latency_p50_us", shard_snaps[k].Percentile(0.50));
        w.Field("latency_p99_us", shard_snaps[k].Percentile(0.99));
        w.EndObject();
      }
      w.EndObject();
    }
    w.Field("scrapes", scrapes);
    w.Field("slow_spans_captured", static_cast<uint64_t>(snap.slow.size()));
    w.Field("slowest_spans", static_cast<uint64_t>(snap.slowest.size()));
    w.Field("attribution_checked", attr.checked);
    w.Field("attribution_within_10pct", attr.ok);
    w.Field("attribution_worst_off_pct", attr.worst_off_pct);
    w.Field("attribution_ok", attribution_ok);
    if (!last_traces.empty()) {
      w.RawField("traces", last_traces);
    }
    if (!last_stats.empty()) {
      w.RawField("server_stats", last_stats);
    }
    std::string json = w.Take();
    const char* path = "BENCH_load.json";
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
      std::printf("  wrote %s\n", path);
    } else {
      std::printf("  could not write %s\n", path);
      return 1;
    }
  }
  if (daemon != nullptr) daemon->Shutdown();
  if (cluster != nullptr) {
    for (auto& d : cluster->daemons) d->Shutdown();
  }
  return attribution_ok ? 0 : 1;
}

}  // namespace
}  // namespace sharoes

int main(int argc, char** argv) {
  sharoes::Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() { return argv[++i]; };
    if (arg == "--seconds" && i + 1 < argc) {
      opt.seconds = std::atof(next());
    } else if (arg == "--rate" && i + 1 < argc) {
      opt.rate = std::atof(next());
    } else if (arg == "--clients" && i + 1 < argc) {
      opt.clients = std::max(1, std::atoi(next()));
    } else if (arg == "--write-pct" && i + 1 < argc) {
      opt.write_pct = std::atoi(next());
    } else if (arg == "--zipf" && i + 1 < argc) {
      opt.zipf_s = std::atof(next());
    } else if (arg == "--shared-files" && i + 1 < argc) {
      opt.shared_files = std::max(1, std::atoi(next()));
    } else if (arg == "--slow-us" && i + 1 < argc) {
      opt.slow_us = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--port" && i + 1 < argc) {
      opt.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--cluster" && i + 1 < argc) {
      opt.cluster = std::max(0, std::atoi(next()));
    } else if (arg == "--replicas" && i + 1 < argc) {
      opt.replicas = std::max(1, std::atoi(next()));
    } else if (arg == "--json") {
      opt.json = true;
    } else {
      std::fprintf(stderr, "bench_load: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }
  return sharoes::Run(opt);
}
