// Reproduces Figure 9 of the paper: the Create-And-List micro-benchmark.
//
//   "For the encryption phase, we created 500 empty files in 25
//    directories and for the decryption phase we performed a recursive
//    listing using an ls -lR operation."
//
// Paper reference values (seconds):
//   CREATE: NO-ENC-MD-D 121, NO-ENC-MD 127, SHAROES 131, PUBLIC 245,
//           PUB-OPT 159
//   LIST:   NO-ENC-MD-D 60,  NO-ENC-MD 60,  SHAROES 63,  PUBLIC 2253,
//           PUB-OPT 196

#include <cstdio>

#include "workload/create_list.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

struct PaperRef {
  double create;
  double list;
};

PaperRef PaperValue(SystemVariant v) {
  switch (v) {
    case SystemVariant::kNoEncMdD:
      return {121, 60};
    case SystemVariant::kNoEncMd:
      return {127, 60};
    case SystemVariant::kSharoes:
      return {131, 63};
    case SystemVariant::kPublic:
      return {245, 2253};
    case SystemVariant::kPubOpt:
      return {159, 196};
  }
  return {0, 0};
}

void Run() {
  Heading("Figure 9: Create-And-List benchmark (500 files in 25 dirs)");
  Table table({"implementation", "CREATE (s)", "paper", "LIST (s)", "paper",
               "list decomposition"});
  double base_create = 0, base_list = 0;
  for (SystemVariant v : AllVariants()) {
    BenchWorldOptions opts;
    opts.variant = v;
    BenchWorld world(opts);
    CreateListParams params;
    CreateListResult r = RunCreateList(world, params);
    if (v == SystemVariant::kNoEncMdD) {
      base_create = r.create.total_s();
      base_list = r.list.total_s();
    }
    PaperRef ref = PaperValue(v);
    table.AddRow({VariantName(v), Seconds(r.create), Seconds(ref.create),
                  Seconds(r.list), Seconds(ref.list), Decompose(r.list)});
  }
  table.Print();
  std::printf(
      "\nShape checks: SHAROES within a small constant of NO-ENC;"
      " PUB-OPT pays ~one RSA-private op per stat; PUBLIC pays one per"
      " metadata block per stat.\n"
      "(baseline NO-ENC-MD-D: create %.0f s, list %.0f s)\n",
      base_create, base_list);
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  return 0;
}
