// Ablation of the paper's §IV-A.1 revocation strategies:
//
//   immediate (the paper's prototype): chmod re-encrypts the file under a
//       fresh key right away — cost grows with file size;
//   lazy (Plutus-style, implemented here as an extension): chmod only
//       records the next key; the next writer performs the rotation.
//
// The sweep shows the trade-off the paper describes: immediate pays the
// re-encryption at revocation time, lazy defers it to the next update.

#include <cstdio>

#include "core/client.h"
#include "workload/report.h"
#include "workload/harness.h"
#include "workload/tree_gen.h"

namespace sharoes::workload {
namespace {

double ChmodCost(size_t file_size, CostSnapshot* next_write_cost) {
  BenchWorldOptions opts;
  opts.variant = SystemVariant::kSharoes;
  // Revocation needs someone to revoke from: register non-owner users so
  // the group/other CAP classes materialize.
  opts.registered_users = 3;
  BenchWorld world(opts);

  core::CreateOptions copts;
  copts.mode = fs::Mode::FromOctal(0644);
  Rng rng(7);
  Bytes content = GenerateContent(rng, file_size);
  Status s = world.client().Create("/work/f.bin", copts);
  if (s.ok()) s = world.client().WriteFile("/work/f.bin", content);
  if (!s.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  // 0644 -> 0600 revokes group/other read: immediate mode re-encrypts.
  CostSnapshot chmod_cost = world.Measure([&] {
    Status st =
        world.client().Chmod("/work/f.bin", fs::Mode::FromOctal(0600));
    if (!st.ok()) {
      std::fprintf(stderr, "chmod failed: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  });
  *next_write_cost = world.Measure([&] {
    Status st = world.client().WriteFile("/work/f.bin", content);
    if (!st.ok()) std::exit(1);
  });
  return chmod_cost.total_ms();
}

void Run() {
  Heading("Revocation ablation: immediate re-encryption cost vs file size");
  Table table({"file size", "chmod+revoke (ms)", "next write (ms)",
               "getattr-only chmod (ms)"});
  for (size_t size : {size_t{4} << 10, size_t{64} << 10, size_t{256} << 10,
                      size_t{1} << 20}) {
    CostSnapshot next_write;
    double revoke_ms = ChmodCost(size, &next_write);

    // Reference point: a chmod that only *grants* (no revocation) costs
    // the same regardless of size.
    BenchWorldOptions opts;
    opts.variant = SystemVariant::kSharoes;
    opts.registered_users = 3;
    BenchWorld world(opts);
    core::CreateOptions copts;
    copts.mode = fs::Mode::FromOctal(0600);
    Rng rng(9);
    (void)world.client().Create("/work/g.bin", copts);
    (void)world.client().WriteFile("/work/g.bin",
                                   GenerateContent(rng, size));
    CostSnapshot grant = world.Measure([&] {
      (void)world.client().Chmod("/work/g.bin", fs::Mode::FromOctal(0644));
    });

    char label[32];
    std::snprintf(label, sizeof(label), "%zu KiB", size >> 10);
    table.AddRow({label, Millis(revoke_ms),
                  Millis(next_write.total_ms()),
                  Millis(grant.total_ms())});
  }
  table.Print();
  std::printf(
      "\nShape: revoking chmod cost grows with file size (download +"
      " re-encrypt + upload), while permission-granting chmod stays flat"
      " (metadata-only). The paper's prototype uses immediate revocation;"
      " lazy revocation (ClientOptions::revocation = kLazy) moves the"
      " re-encryption into the next write instead.\n");
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  return 0;
}
