// Reproduces Figures 11 and 12 of the paper: the Andrew benchmark's five
// phases and the cumulative table.
//
// Paper reference (Figure 12, cumulative):
//   NO-ENC-MD-D 239 s (—), NO-ENC-MD 248 s (+3.7%), SHAROES 266 s (+11%),
//   PUB-OPT 384 s (+60%).
// Figure 11's shape: phases 2 and 4 (I/O) show minimal SHAROES overhead;
// PUB-OPT's phase-2/4 overheads are close to its phase-3 (pure stat)
// overhead because the private-key metadata decryption dominates.

#include <cstdio>

#include "workload/andrew.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

struct PaperRef {
  double total;
  const char* overhead;
};

PaperRef PaperValue(SystemVariant v) {
  switch (v) {
    case SystemVariant::kNoEncMdD:
      return {239, "-"};
    case SystemVariant::kNoEncMd:
      return {248, "+3.7%"};
    case SystemVariant::kSharoes:
      return {266, "+11%"};
    case SystemVariant::kPubOpt:
      return {384, "+60%"};
    default:
      return {0, "-"};
  }
}

void Run() {
  Heading("Figure 11: Andrew benchmark, per-phase times (s)");
  Table phases({"implementation", "P1 mkdir", "P2 copy", "P3 stat",
                "P4 read", "P5 compile"});
  Table cumulative({"implementation", "total (s)", "overhead", "paper (s)",
                    "paper overhead"});
  double base = 0;
  for (SystemVariant v : MacroVariants()) {
    BenchWorldOptions opts;
    opts.variant = v;
    BenchWorld world(opts);
    AndrewParams params;
    AndrewResult r = RunAndrew(world, params);
    phases.AddRow({VariantName(v), Seconds(r.phase[0]), Seconds(r.phase[1]),
                   Seconds(r.phase[2]), Seconds(r.phase[3]),
                   Seconds(r.phase[4])});
    double total = r.Total().total_s();
    if (v == SystemVariant::kNoEncMdD) base = total;
    PaperRef ref = PaperValue(v);
    cumulative.AddRow({VariantName(v), Seconds(total),
                       v == SystemVariant::kNoEncMdD
                           ? "-"
                           : Percent(total, base),
                       Seconds(ref.total), ref.overhead});
  }
  phases.Print();
  Heading("Figure 12: Andrew benchmark, cumulative");
  cumulative.Print();
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  return 0;
}
