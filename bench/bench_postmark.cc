// Reproduces Figure 10 of the paper: the Postmark benchmark with the
// client cache size swept from 0% to 100% of the data-set size.
//
//   "500 small files are created and then 500 randomly chosen
//    transactions (read, write, create, delete) are performed ...
//    file sizes ranging between 500 bytes and 9.77 KB."
//
// Paper reference shape (transaction-phase seconds, read off Figure 10):
// all series fall from ~1150-1300 s at 0% cache toward ~450-550 s at
// 100%; PUB-OPT is competitive only at 100% and becomes ~64% more
// expensive than NO-ENC-MD-D (~43% more than SHAROES) at 10% cache,
// while SHAROES stays within ~15% of NO-ENC-MD-D throughout.

#include <cstdio>

#include "workload/postmark.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

void Run() {
  Heading(
      "Figure 10: Postmark (500 files, 500 transactions) vs. cache size");
  const double fractions[] = {0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  Table table({"cache %", "NO-ENC-MD-D (s)", "NO-ENC-MD (s)", "SHAROES (s)",
               "PUB-OPT (s)", "SHAROES vs base", "PUB-OPT vs base"});
  for (double frac : fractions) {
    std::vector<double> secs;
    for (SystemVariant v : MacroVariants()) {
      BenchWorldOptions opts;
      opts.variant = v;
      BenchWorld world(opts);
      PostmarkParams params;
      PostmarkResult r = RunPostmark(world, params, frac);
      secs.push_back(r.transactions.total_s());
    }
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%", frac * 100);
    table.AddRow({pct, Seconds(secs[0]), Seconds(secs[1]), Seconds(secs[2]),
                  Seconds(secs[3]), Percent(secs[2], secs[0]),
                  Percent(secs[3], secs[0])});
  }
  table.Print();
  std::printf(
      "\nPaper shape: PUB-OPT competitive only near 100%% cache; at 10%%"
      " it is ~64%% costlier than NO-ENC-MD-D and ~43%% costlier than"
      " SHAROES; SHAROES stays within ~15%% of NO-ENC-MD-D.\n");
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  return 0;
}
