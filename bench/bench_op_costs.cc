// Reproduces Figure 13 of the paper: per-operation cost decomposition
// (NETWORK / CRYPTO / OTHER) for SHAROES filesystem operations.
//
// Paper reference shape: getattr completes in a little over 100 ms,
// dominated by the network; the CRYPTO component stays below ~7% for all
// operations; mkdir grows with the number (and kind) of CAPs created —
// exec-only CAPs cost extra for the per-row inner encryption; 1 MB I/O is
// dominated by WAN transfer time.

#include <cstdio>

#include "workload/op_costs.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

void Run() {
  Heading("Figure 13: SHAROES filesystem operation costs");
  BenchWorldOptions opts;
  opts.variant = SystemVariant::kSharoes;
  // The CAP-variety probes need non-owner classes to exist, so register
  // a small enterprise (other users make group/other CAPs non-empty).
  opts.registered_users = 3;
  BenchWorld world(opts);
  std::vector<OpCost> costs = RunOpCostProbes(world);
  Table table({"operation", "total (ms)", "NETWORK (ms)", "CRYPTO (ms)",
               "OTHER (ms)", "crypto share"});
  for (const OpCost& c : costs) {
    double total = c.cost.total_ms();
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  100.0 * c.cost.crypto_ns() / c.cost.total_ns);
    table.AddRow({c.op, Millis(total), Millis(c.cost.network_ns() / 1e6),
                  Millis(c.cost.crypto_ns() / 1e6),
                  Millis(c.cost.other_ns() / 1e6), share});
  }
  table.Print();
  std::printf(
      "\nPaper shape: getattr ~110 ms (network-dominated); CRYPTO < 7%%"
      " of every operation; mkdir:both > mkdir:--x > mkdir:rwx; 1 MB I/O"
      " dominated by WAN transfer.\n");
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  return 0;
}
