// Reproduces Figure 13 of the paper: per-operation cost decomposition
// (NETWORK / CRYPTO / OTHER) for SHAROES filesystem operations.
//
// Paper reference shape: getattr completes in a little over 100 ms,
// dominated by the network; the CRYPTO component stays below ~7% for all
// operations; mkdir grows with the number (and kind) of CAPs created —
// exec-only CAPs cost extra for the per-row inner encryption; 1 MB I/O is
// dominated by WAN transfer time.
//
// Also measures the observability layer's own cost: wall-clock ns/op of
// the instrumented SSP serving path on an Andrew-style op mix, with
// metrics enabled vs SHAROES_METRICS=off, written to
// BENCH_obs_overhead.json (budget: < 2%, DESIGN.md §9).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ssp/message.h"
#include "ssp/ssp_server.h"
#include "ssp/wal.h"
#include "workload/andrew.h"
#include "workload/op_costs.h"
#include "workload/report.h"

namespace sharoes::workload {
namespace {

void Run() {
  Heading("Figure 13: SHAROES filesystem operation costs");
  BenchWorldOptions opts;
  opts.variant = SystemVariant::kSharoes;
  // The CAP-variety probes need non-owner classes to exist, so register
  // a small enterprise (other users make group/other CAPs non-empty).
  opts.registered_users = 3;
  BenchWorld world(opts);
  std::vector<OpCost> costs = RunOpCostProbes(world);
  Table table({"operation", "total (ms)", "NETWORK (ms)", "CRYPTO (ms)",
               "OTHER (ms)", "crypto share"});
  for (const OpCost& c : costs) {
    double total = c.cost.total_ms();
    char share[16];
    std::snprintf(share, sizeof(share), "%.1f%%",
                  100.0 * c.cost.crypto_ns() / c.cost.total_ns);
    table.AddRow({c.op, Millis(total), Millis(c.cost.network_ns() / 1e6),
                  Millis(c.cost.crypto_ns() / 1e6),
                  Millis(c.cost.other_ns() / 1e6), share});
  }
  table.Print();
  std::printf(
      "\nPaper shape: getattr ~110 ms (network-dominated); CRYPTO < 7%%"
      " of every operation; mkdir:both > mkdir:--x > mkdir:rwx; 1 MB I/O"
      " dominated by WAN transfer.\n");
}

/// The Andrew phases as SSP wire frames (the serving-path view of the
/// workload in tests/core/client_fault_test.cc): directory/metadata
/// puts, stat-phase metadata gets, data reads/writes, and a batched
/// "metadata send". Trace-stamped, so the instrumented run pays the
/// full price: extension parse + per-op counters + histograms + gauges.
std::vector<Bytes> AndrewWireMix() {
  Bytes block(4096, 0xAB);
  Bytes meta(256, 0x17);
  std::vector<ssp::Request> mix;
  for (int i = 0; i < 3; ++i) {  // Phase 1: mkdir skeleton.
    mix.push_back(ssp::Request::PutMetadata(10 + i, 0, meta));
  }
  for (int i = 0; i < 5; ++i) {  // Phase 2: copy sources in.
    mix.push_back(ssp::Request::Batch(
        {ssp::Request::PutMetadata(20 + i, 0, meta),
         ssp::Request::PutData(20 + i, 0, block)}));
  }
  for (int i = 0; i < 5; ++i) {  // Phase 3: stat everything.
    mix.push_back(ssp::Request::GetMetadata(20 + i, 0));
  }
  for (int i = 0; i < 5; ++i) {  // Phase 4: cold reads.
    mix.push_back(ssp::Request::GetData(20 + i, 0));
  }
  for (int i = 0; i < 5; ++i) {  // Phase 5: compile + link.
    mix.push_back(ssp::Request::GetData(20 + i, 0));
    mix.push_back(ssp::Request::Batch(
        {ssp::Request::PutMetadata(30 + i, 0, meta),
         ssp::Request::PutData(30 + i, 0, block)}));
    mix.push_back(ssp::Request::GetData(30 + i, 0));
  }
  std::vector<Bytes> frames;
  frames.reserve(mix.size());
  for (const ssp::Request& req : mix) {
    frames.push_back(req.SerializeWithTrace(obs::NextTraceId(), 0));
  }
  return frames;
}

/// ns/op for one pass configuration; best-of-`rounds` to suppress
/// scheduler noise (this host has a single CPU — see README).
double MeasureNsPerOp(ssp::SspServer* server, const std::vector<Bytes>& mix,
                      int rounds, int passes_per_round) {
  double best = 0;
  for (int r = 0; r < rounds; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (int p = 0; p < passes_per_round; ++p) {
      for (const Bytes& frame : mix) (void)server->HandleWire(frame);
    }
    auto end = std::chrono::steady_clock::now();
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    double per_op = ns / (static_cast<double>(passes_per_round) *
                          static_cast<double>(mix.size()));
    if (r == 0 || per_op < best) best = per_op;
  }
  return best;
}

/// Wall-clock seconds of one full client-level Andrew run (all five
/// phases, SHAROES variant). World construction (provisioning crypto) is
/// excluded; the run itself exercises every instrumented layer: client
/// spans, cache counters, retry accounting, and the SSP serving path.
double MeasureAndrewSeconds() {
  BenchWorldOptions opts;
  opts.variant = SystemVariant::kSharoes;
  BenchWorld world(opts);
  AndrewParams params;
  auto start = std::chrono::steady_clock::now();
  (void)RunAndrew(world, params);
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

void RunObsOverhead() {
  Heading("Observability overhead: instrumented vs SHAROES_METRICS=off");

  // (a) Worst case: the raw in-process SSP serving path, where one op is
  // a ~600 ns hashtable access and every instrumentation atomic shows.
  // Long rounds: on a 1-CPU host a ~15 ns/op delta disappears into
  // scheduler noise unless each timed sample spans many timeslices.
  ssp::SspServer server;
  std::vector<Bytes> mix = AndrewWireMix();
  constexpr int kRounds = 7;
  constexpr int kPasses = 3000;
  // Warm up stores, metric registrations, and caches before timing.
  (void)MeasureNsPerOp(&server, mix, 1, 50);
  // Interleave the two modes round-robin so slow drift (thermal, other
  // tenants) biases neither; best-of-round is taken per mode.
  double serve_on = 0, serve_off = 0;
  for (int r = 0; r < kRounds; ++r) {
    obs::SetMetricsEnabled(true);
    double on_ns = MeasureNsPerOp(&server, mix, 1, kPasses);
    obs::SetMetricsEnabled(false);
    double off_ns = MeasureNsPerOp(&server, mix, 1, kPasses);
    if (r == 0 || on_ns < serve_on) serve_on = on_ns;
    if (r == 0 || off_ns < serve_off) serve_off = off_ns;
  }
  double serve_pct = (serve_on - serve_off) / serve_off * 100.0;

  // (b) The budgeted number (DESIGN.md §9): the client-level Andrew op
  // mix, where each op also pays its real crypto and codec work — the
  // denominator an operator actually experiences.
  constexpr int kAndrewRounds = 3;
  double andrew_on = 0, andrew_off = 0;
  for (int r = 0; r < kAndrewRounds; ++r) {
    obs::SetMetricsEnabled(true);
    double on_s = MeasureAndrewSeconds();
    obs::SetMetricsEnabled(false);
    double off_s = MeasureAndrewSeconds();
    if (r == 0 || on_s < andrew_on) andrew_on = on_s;
    if (r == 0 || off_s < andrew_off) andrew_off = off_s;
  }
  obs::SetMetricsEnabled(true);
  double andrew_pct = (andrew_on - andrew_off) / andrew_off * 100.0;

  std::printf("  SSP serving path (worst case, ~600 ns/op denominator):\n");
  std::printf("    instrumented : %8.1f ns/op\n", serve_on);
  std::printf("    metrics off  : %8.1f ns/op\n", serve_off);
  std::printf("    overhead     : %+7.2f %%\n", serve_pct);
  std::printf("  Andrew client op mix (budgeted, DESIGN.md §9):\n");
  std::printf("    instrumented : %8.3f s/run\n", andrew_on);
  std::printf("    metrics off  : %8.3f s/run\n", andrew_off);
  std::printf("    overhead     : %+7.2f %%  (budget < 2%%)\n", andrew_pct);

  obs::JsonObjectWriter w;
  w.Field("bench", "obs_overhead");
  w.BeginObject("serving_path");
  w.Field("op_mix", "andrew_wire_frames");
  w.Field("ops_per_pass", static_cast<uint64_t>(mix.size()));
  w.Field("passes_per_round", static_cast<uint64_t>(kPasses));
  w.Field("rounds", static_cast<uint64_t>(kRounds));
  w.Field("instrumented_ns_per_op", serve_on);
  w.Field("metrics_off_ns_per_op", serve_off);
  w.Field("overhead_pct", serve_pct);
  w.EndObject();
  w.BeginObject("andrew_client");
  w.Field("op_mix", "andrew_five_phases");
  w.Field("rounds", static_cast<uint64_t>(kAndrewRounds));
  w.Field("instrumented_s_per_run", andrew_on);
  w.Field("metrics_off_s_per_run", andrew_off);
  w.Field("overhead_pct", andrew_pct);
  w.EndObject();
  w.Field("budget_pct", 2.0);
  w.Field("budget_applies_to", "andrew_client");
  w.Field("within_budget", andrew_pct < 2.0);
  std::string json = w.Take();
  const char* path = "BENCH_obs_overhead.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("  wrote %s\n", path);
  } else {
    std::printf("  could not write %s\n", path);
  }
}

/// ns/op of the serving path with a WAL attached under one sync policy.
/// Fresh log directory per call; the Wal is torn down (joining its
/// background thread) before the directory is removed.
double MeasureWalNsPerOp(ssp::WalSyncPolicy policy,
                         const std::vector<Bytes>& mix, int rounds,
                         int passes_per_round) {
  std::string dir = std::string("/tmp/sharoes_bench_wal_") +
                    ssp::WalSyncPolicyName(policy);
  std::string rm = "rm -rf " + dir;
  (void)std::system(rm.c_str());
  ssp::SspServer server;
  ssp::WalOptions opts;
  opts.sync = policy;
  auto wal = ssp::Wal::Open(dir, opts, &server.store());
  if (!wal.ok()) {
    std::printf("  could not open WAL at %s: %s\n", dir.c_str(),
                wal.status().ToString().c_str());
    return 0;
  }
  server.set_wal(wal->get());
  (void)MeasureNsPerOp(&server, mix, 1, 10);  // Warm-up.
  double best = MeasureNsPerOp(&server, mix, rounds, passes_per_round);
  server.set_wal(nullptr);
  wal->reset();
  (void)std::system(rm.c_str());
  return best;
}

void RunWalOverhead() {
  Heading("WAL overhead: serving path with durability on vs off");

  // Same wire mix as the observability bench (~60% mutating ops, so the
  // append/ack path is exercised at a realistic rate). Few passes: under
  // --wal-sync always every mutating request is an fsync, and the point
  // is the per-op cost ordering (off < interval < always), not a
  // throughput record. Single-CPU host + /tmp (often tmpfs) make the
  // absolute fsync numbers flatter than production disks — see README.
  std::vector<Bytes> mix = AndrewWireMix();
  constexpr int kRounds = 3;
  constexpr int kPasses = 60;

  ssp::SspServer baseline;
  (void)MeasureNsPerOp(&baseline, mix, 1, 10);
  double no_wal = MeasureNsPerOp(&baseline, mix, kRounds, kPasses);

  struct PolicyRow {
    ssp::WalSyncPolicy policy;
    double ns_per_op;
  };
  std::vector<PolicyRow> rows;
  for (ssp::WalSyncPolicy policy :
       {ssp::WalSyncPolicy::kOff, ssp::WalSyncPolicy::kInterval,
        ssp::WalSyncPolicy::kAlways}) {
    rows.push_back({policy, MeasureWalNsPerOp(policy, mix, kRounds, kPasses)});
  }

  std::printf("    no WAL        : %10.1f ns/op\n", no_wal);
  for (const PolicyRow& row : rows) {
    double pct = (row.ns_per_op - no_wal) / no_wal * 100.0;
    std::printf("    sync=%-8s : %10.1f ns/op  (%+8.1f %%)\n",
                ssp::WalSyncPolicyName(row.policy), row.ns_per_op, pct);
  }

  obs::JsonObjectWriter w;
  w.Field("bench", "wal_overhead");
  w.Field("op_mix", "andrew_wire_frames");
  w.Field("ops_per_pass", static_cast<uint64_t>(mix.size()));
  w.Field("passes_per_round", static_cast<uint64_t>(kPasses));
  w.Field("rounds", static_cast<uint64_t>(kRounds));
  w.Field("no_wal_ns_per_op", no_wal);
  for (const PolicyRow& row : rows) {
    w.BeginObject(std::string("sync_") +
                  ssp::WalSyncPolicyName(row.policy));
    w.Field("ns_per_op", row.ns_per_op);
    w.Field("overhead_pct", (row.ns_per_op - no_wal) / no_wal * 100.0);
    w.EndObject();
  }
  w.Field("note",
          "single-CPU host, /tmp backing; fsync costs are flatter than "
          "production disks, compare policies relatively");
  std::string json = w.Take();
  const char* path = "BENCH_wal_overhead.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("  wrote %s\n", path);
  } else {
    std::printf("  could not write %s\n", path);
  }
}

/// Group commit under concurrency: K writer threads ack mutating
/// requests against a WAL in sync=always mode with a commit window, and
/// the fsync counter must grow sublinearly in acked ops — concurrent
/// committers share the leader's fsync instead of each paying their own.
/// Without group commit this ratio is exactly 1.0; CI gates on < 1.
void RunGroupCommit() {
  Heading("WAL group commit: fsyncs per acked op, 8 concurrent writers");

  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 40;
  constexpr uint32_t kWindowUs = 2000;

  std::string dir = "/tmp/sharoes_bench_group_commit";
  std::string rm = "rm -rf " + dir;
  (void)std::system(rm.c_str());
  ssp::SspServer server;
  ssp::WalOptions wal_opts;
  wal_opts.sync = ssp::WalSyncPolicy::kAlways;
  wal_opts.group_commit_us = kWindowUs;
  auto wal = ssp::Wal::Open(dir, wal_opts, &server.store());
  if (!wal.ok()) {
    std::printf("  could not open WAL at %s: %s\n", dir.c_str(),
                wal.status().ToString().c_str());
    return;
  }
  server.set_wal(wal->get());

  auto& reg = obs::MetricsRegistry::Global();
  uint64_t fsyncs0 = reg.counter("ssp.wal.fsyncs")->Value();
  std::atomic<uint64_t> acked{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Bytes block(512, static_cast<uint8_t>(w));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ssp::Response resp = server.Handle(ssp::Request::PutData(
            1000 + w, static_cast<uint32_t>(i), block));
        if (resp.status == ssp::RespStatus::kOk) {
          acked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  uint64_t fsyncs = reg.counter("ssp.wal.fsyncs")->Value() - fsyncs0;
  uint64_t leads = reg.counter("ssp.wal.commit_leads")->Value();
  uint64_t piggybacks = reg.counter("ssp.wal.commit_piggybacks")->Value();
  server.set_wal(nullptr);
  wal->reset();
  (void)std::system(rm.c_str());

  double per_op = acked.load() == 0
                      ? 0.0
                      : static_cast<double>(fsyncs) /
                            static_cast<double>(acked.load());
  std::printf("    writers            : %d x %d ops\n", kWriters,
              kOpsPerWriter);
  std::printf("    acked ops          : %llu\n",
              static_cast<unsigned long long>(acked.load()));
  std::printf("    fsyncs             : %llu\n",
              static_cast<unsigned long long>(fsyncs));
  std::printf("    fsyncs per acked op: %.3f  (per-request sync = 1.0)\n",
              per_op);

  obs::JsonObjectWriter w;
  w.Field("bench", "wal_group_commit");
  w.Field("sync_policy", "always");
  w.Field("group_commit_us", static_cast<uint64_t>(kWindowUs));
  w.Field("writers", static_cast<uint64_t>(kWriters));
  w.Field("ops_per_writer", static_cast<uint64_t>(kOpsPerWriter));
  w.Field("acked_ops", acked.load());
  w.Field("fsyncs", fsyncs);
  w.Field("fsyncs_per_acked_op", per_op);
  w.Field("commit_leads_total", leads);
  w.Field("commit_piggybacks_total", piggybacks);
  w.Field("sublinear", per_op < 1.0);
  std::string json = w.Take();
  const char* path = "BENCH_group_commit.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("  wrote %s\n", path);
  } else {
    std::printf("  could not write %s\n", path);
  }
}

}  // namespace
}  // namespace sharoes::workload

int main() {
  sharoes::workload::Run();
  sharoes::workload::RunObsOverhead();
  sharoes::workload::RunWalOverhead();
  sharoes::workload::RunGroupCommit();
  return 0;
}
