// Concurrent SSP serving-path benchmark: 1/2/4/8 client threads running
// a mixed put/get workload against the shard-striped ObjectStore versus
// the single-lock baseline (an ObjectStore constructed with 1 shard,
// which degrades to one global mutex — the pre-sharding design). Extends
// the Figure-10-style sweeps to the multi-client axis the paper's
// "enterprise of users" implies.
//
//   ./bench_concurrent_ssp
//   ./bench_concurrent_ssp --benchmark_filter='shards:16'
//
// ops_per_sec counters are directly comparable across rows; the
// acceptance bar for the sharded store is >1.5x the 1-shard baseline at
// 4 threads.
//
// NOTE: the comparison requires real cores. On a single-CPU host the
// scheduler time-slices all worker threads onto one core and glibc's
// unfair lock handoff lets whichever thread is running re-acquire the
// single lock for its whole quantum, so the two configurations converge
// (the bench prints a warning). Run on >=2 cores (e.g. the CI runners)
// to see the striping win.

#include <benchmark/benchmark.h>

#include <barrier>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "ssp/ssp_server.h"

namespace {

using sharoes::Bytes;
using sharoes::fs::InodeNum;
using sharoes::ssp::ObjectStore;
using sharoes::ssp::Request;
using sharoes::ssp::SspServer;

constexpr int kOpsPerThread = 4000;
constexpr int kKeysPerThread = 256;

// Each thread works a private inode range (distinct users/files, the
// common enterprise case) with a 50/50 put/get mix, plus an occasional
// read of a shared hot inode so shards see some cross-thread sharing.
void StoreWorker(ObjectStore& store, int t, const Bytes& payload) {
  const InodeNum base = static_cast<InodeNum>(t + 1) * 1'000'000;
  for (int i = 0; i < kOpsPerThread; ++i) {
    InodeNum inode = base + static_cast<InodeNum>(i % kKeysPerThread);
    if (i % 2 == 0) {
      store.PutData(inode, 0, payload);
    } else {
      benchmark::DoNotOptimize(store.GetData(inode, 0));
    }
    if (i % 16 == 0) {
      benchmark::DoNotOptimize(store.GetMetadata(1, 0));  // Shared hot key.
    }
  }
}

void RunThreadPack(int threads, const std::function<void(int)>& body) {
  std::barrier start(threads);
  std::vector<std::thread> pack;
  pack.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pack.emplace_back([&, t] {
      start.arrive_and_wait();
      body(t);
    });
  }
  for (std::thread& th : pack) th.join();
}

// range(0) = client threads, range(1) = shard count (1 = the single-lock
// baseline, 16 = the striped default).
void BM_StoreMixedOps(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  const Bytes payload(256, 0xAB);
  for (auto _ : state) {
    ObjectStore store(shards);
    store.PutMetadata(1, 0, payload);  // The shared hot key.
    RunThreadPack(threads,
                  [&](int t) { StoreWorker(store, t, payload); });
  }
  const int64_t total_ops =
      state.iterations() * threads * static_cast<int64_t>(kOpsPerThread);
  state.SetItemsProcessed(total_ops);
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StoreMixedOps)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 16}})
    ->ArgNames({"threads", "shards"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The same sweep through the full serving path (wire decode -> dispatch
// -> store -> wire encode), i.e. what each TcpSspDaemon connection thread
// executes per request.
void BM_ServerHandleWire(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  const Bytes payload(256, 0xCD);
  for (auto _ : state) {
    SspServer server{ObjectStore(shards)};
    RunThreadPack(threads, [&](int t) {
      const InodeNum base = static_cast<InodeNum>(t + 1) * 1'000'000;
      for (int i = 0; i < kOpsPerThread; ++i) {
        InodeNum inode = base + static_cast<InodeNum>(i % kKeysPerThread);
        Bytes wire = (i % 2 == 0)
                         ? Request::PutData(inode, 0, payload).Serialize()
                         : Request::GetData(inode, 0).Serialize();
        benchmark::DoNotOptimize(server.HandleWire(wire));
      }
    });
  }
  const int64_t total_ops =
      state.iterations() * threads * static_cast<int64_t>(kOpsPerThread);
  state.SetItemsProcessed(total_ops);
  state.counters["ops_per_sec"] = benchmark::Counter(
      static_cast<double>(total_ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServerHandleWire)
    ->ArgsProduct({{1, 2, 4, 8}, {1, 16}})
    ->ArgNames({"threads", "shards"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  if (std::thread::hardware_concurrency() <= 1) {
    std::fprintf(stderr,
                 "bench_concurrent_ssp: WARNING: only 1 CPU online; thread "
                 "sweeps are time-sliced and the sharded-vs-single-lock "
                 "ratio will not reflect multicore scaling.\n");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
