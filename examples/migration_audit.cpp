// Migration + audit: transition a generated enterprise tree to the SSP,
// verify every byte came through, inspect what the SSP can actually see,
// demonstrate tamper detection, and price the storage under both
// replication schemes.
//
//   ./build/examples/migration_audit

#include <algorithm>
#include <cstdio>
#include <functional>

#include "core/client.h"
#include "core/migration.h"
#include "net/network_model.h"
#include "ssp/ssp_server.h"
#include "workload/tree_gen.h"

using namespace sharoes;

namespace {

constexpr fs::UserId kAdmin = 50;
constexpr fs::GroupId kStaff = 500;

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

bool BlobContains(const Bytes& blob, const std::string& needle) {
  return std::search(blob.begin(), blob.end(), needle.begin(),
                     needle.end()) != blob.end();
}

}  // namespace

int main() {
  std::printf("=== SHAROES migration & audit demo ===\n\n");

  SimClock clock;
  crypto::CryptoEngineOptions eng_opts;
  eng_opts.rng_seed = 99;
  eng_opts.cost_model = crypto::CryptoCostModel::Zero();
  eng_opts.signing_key_pool = 32;  // Bulk migration: pool signing keys.
  crypto::CryptoEngine engine(&clock, eng_opts);
  ssp::SspServer ssp_server;
  net::Transport wan(&clock, net::NetworkModel::Zero());
  ssp::SspConnection conn(&ssp_server, &wan);

  core::IdentityDirectory identity;
  core::Provisioner::Options popts;
  popts.user_key_bits = 1024;
  core::Provisioner provisioner(&identity, &ssp_server, &engine, popts);
  auto admin_kp = provisioner.CreateUser(kAdmin, "admin");
  Check(admin_kp.status(), "admin");
  Check(provisioner.CreateGroup(kStaff, "staff", {kAdmin}).status(),
        "group");

  // A generated enterprise tree: ~40 dirs/files, 70% exec-only dirs (the
  // distribution the paper's user study reports).
  workload::TreeGenParams tparams;
  tparams.depth = 2;
  tparams.dirs_per_dir = 2;
  tparams.files_per_dir = 4;
  tparams.owner = kAdmin;
  tparams.group = kStaff;
  tparams.exec_only_dir_fraction = 0.7;
  tparams.seed = 1234;
  core::LocalNode tree = workload::GenerateTree(tparams);

  std::printf("Migrating the generated tree to the SSP...\n");
  auto stats = provisioner.Migrate(tree);
  Check(stats.status(), "migrate");
  std::printf("  files %llu, dirs %llu, metadata replicas %llu, table "
              "copies %llu,\n  split blocks %llu, data blocks %llu, bytes "
              "%llu\n\n",
              static_cast<unsigned long long>(stats->files),
              static_cast<unsigned long long>(stats->directories),
              static_cast<unsigned long long>(stats->metadata_replicas),
              static_cast<unsigned long long>(stats->table_copies),
              static_cast<unsigned long long>(stats->split_blocks),
              static_cast<unsigned long long>(stats->data_blocks),
              static_cast<unsigned long long>(stats->bytes_transferred));

  // --- Audit 1: everything reads back byte-identical. ---
  core::ClientOptions copts;
  copts.default_group = kStaff;
  core::SharoesClient admin(kAdmin, admin_kp->priv, &identity, &conn,
                            &engine, copts);
  Check(admin.Mount(), "mount");
  int verified = 0;
  std::function<void(const core::LocalNode&, const std::string&)> verify =
      [&](const core::LocalNode& node, const std::string& path) {
        for (const core::LocalNode& child : node.children) {
          std::string cpath =
              path == "/" ? "/" + child.name : path + "/" + child.name;
          if (child.type == fs::FileType::kFile) {
            auto read = admin.Read(cpath);
            Check(read.status(), cpath.c_str());
            if (*read != child.content) {
              std::fprintf(stderr, "MISMATCH at %s\n", cpath.c_str());
              std::exit(1);
            }
            ++verified;
          } else {
            verify(child, cpath);
          }
        }
      };
  verify(tree, "/");
  std::printf("Audit 1: all %d files read back byte-identical.\n", verified);

  // --- Audit 2: the SSP sees only ciphertext. ---
  // Hunt the first generated file's plaintext in every stored blob.
  const core::LocalNode* first_file = nullptr;
  std::function<void(const core::LocalNode&)> find =
      [&](const core::LocalNode& node) {
        for (const core::LocalNode& child : node.children) {
          if (first_file != nullptr) return;
          if (child.type == fs::FileType::kFile) {
            first_file = &child;
          } else {
            find(child);
          }
        }
      };
  find(tree);
  std::string probe = ToString(first_file->content).substr(0, 24);
  bool leaked = false;
  for (fs::InodeNum inode = 1; inode < 200; ++inode) {
    for (uint32_t blk = 0; blk < 8; ++blk) {
      auto blob = ssp_server.store().GetData(inode, blk);
      if (blob.has_value() && BlobContains(*blob, probe)) leaked = true;
    }
  }
  std::printf("Audit 2: plaintext probe \"%s...\" found in SSP storage: "
              "%s\n", probe.substr(0, 12).c_str(), leaked ? "YES (BUG!)"
                                                          : "no");

  // --- Audit 3: tamper detection. ---
  auto attrs = admin.Getattr("/file0.dat");
  Check(attrs.status(), "stat probe file");
  ssp_server.store().CorruptData(attrs->inode, 0, 17);
  admin.DropCaches();
  auto tampered = admin.Read("/file0.dat");
  std::printf("Audit 3: SSP flips one byte of /file0.dat; client read -> "
              "%s\n", tampered.ok() ? "ACCEPTED (BUG!)"
                                    : tampered.status().ToString().c_str());

  // --- Audit 4: storage pricing, Scheme-1 vs Scheme-2. ---
  std::printf("\nStorage accounting (this tree, %llu registered users):\n",
              static_cast<unsigned long long>(identity.user_count()));
  ssp::StorageStats s2 = ssp_server.store().Stats();
  std::printf("  Scheme-2 (per-CAP replicas): metadata %llu B, data %llu B"
              ", split blocks %llu B\n",
              static_cast<unsigned long long>(s2.metadata_bytes),
              static_cast<unsigned long long>(s2.user_metadata_bytes +
                                              s2.metadata_bytes) -
                  static_cast<unsigned long long>(s2.metadata_bytes),
              static_cast<unsigned long long>(s2.user_metadata_bytes));
  std::printf("  (see bench_schemes for the full Scheme-1 vs Scheme-2 "
              "cost sweep)\n");

  std::printf("\nDone.\n");
  return 0;
}
