// Enterprise sharing scenarios: groups, exec-only home directories,
// POSIX ACL split points, and chmod-driven revocation — the full *nix
// data sharing semantics of the paper, over an untrusted SSP.
//
//   ./build/examples/enterprise_sharing

#include <cstdio>

#include "core/client.h"
#include "core/migration.h"
#include "net/network_model.h"
#include "ssp/ssp_server.h"

using namespace sharoes;

namespace {

constexpr fs::UserId kAlice = 1, kBob = 2, kCarol = 3;
constexpr fs::GroupId kEng = 100;

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

std::string Outcome(const Status& s) {
  return s.ok() ? "allowed" : s.ToString();
}

fs::Mode M(const char* s) {
  fs::Mode m;
  if (!fs::Mode::Parse(s, &m)) std::exit(2);
  return m;
}

}  // namespace

int main() {
  std::printf("=== SHAROES enterprise sharing demo ===\n\n");

  SimClock clock;
  crypto::CryptoEngineOptions eng_opts;
  eng_opts.rng_seed = 7;
  eng_opts.cost_model = crypto::CryptoCostModel::Zero();  // Demo: no WAN.
  crypto::CryptoEngine engine(&clock, eng_opts);
  ssp::SspServer ssp_server;
  net::Transport wan(&clock, net::NetworkModel::Zero());
  ssp::SspConnection conn(&ssp_server, &wan);

  core::IdentityDirectory identity;
  core::Provisioner::Options popts;
  popts.user_key_bits = 1024;
  core::Provisioner provisioner(&identity, &ssp_server, &engine, popts);
  auto alice_kp = provisioner.CreateUser(kAlice, "alice");
  auto bob_kp = provisioner.CreateUser(kBob, "bob");
  auto carol_kp = provisioner.CreateUser(kCarol, "carol");
  Check(carol_kp.status(), "users");
  // Engineering group: alice and bob. Group keys are wrapped to each
  // member and stored at the SSP (paper §II-A).
  Check(provisioner.CreateGroup(kEng, "eng", {kAlice, kBob}).status(),
        "group");

  // The enterprise tree, with the permission patterns the paper's user
  // study found dominant (exec-only home directories):
  //   /home              0755  alice:eng
  //   /home/alice        0711  <- exec-only for everyone else
  //   /home/alice/cv.pdf 0600
  //   /home/alice/talk.pdf 0644
  //   /eng               0770  group collaboration space
  //   /eng/design.md     0660
  core::LocalNode root = core::LocalNode::Dir("", kAlice, kEng, M("rwxr-xr-x"));
  core::LocalNode home = core::LocalNode::Dir("home", kAlice, kEng,
                                              M("rwxr-xr-x"));
  core::LocalNode ahome = core::LocalNode::Dir("alice", kAlice, kEng,
                                               M("rwx--x--x"));
  ahome.children.push_back(core::LocalNode::File(
      "cv.pdf", kAlice, kEng, M("rw-------"), ToBytes("alice's cv")));
  ahome.children.push_back(core::LocalNode::File(
      "talk.pdf", kAlice, kEng, M("rw-r--r--"), ToBytes("public talk")));
  home.children.push_back(std::move(ahome));
  core::LocalNode eng = core::LocalNode::Dir("eng", kAlice, kEng,
                                             M("rwxrwx---"));
  eng.children.push_back(core::LocalNode::File(
      "design.md", kAlice, kEng, M("rw-rw----"), ToBytes("# design v1")));
  root.children.push_back(std::move(home));
  root.children.push_back(std::move(eng));
  Check(provisioner.Migrate(root).status(), "migrate");

  core::ClientOptions copts;
  copts.default_group = kEng;
  core::SharoesClient alice(kAlice, alice_kp->priv, &identity, &conn,
                            &engine, copts);
  core::SharoesClient bob(kBob, bob_kp->priv, &identity, &conn, &engine,
                          copts);
  core::ClientOptions carol_opts;  // carol is not in eng.
  core::SharoesClient carol(kCarol, carol_kp->priv, &identity, &conn,
                            &engine, carol_opts);
  Check(alice.Mount(), "mount alice");
  Check(bob.Mount(), "mount bob");
  Check(carol.Mount(), "mount carol");

  std::printf("--- Exec-only home directory (/home/alice is rwx--x--x) ---\n");
  auto ls = bob.Readdir("/home/alice");
  std::printf("bob:   ls /home/alice            -> %s\n",
              ls.ok() ? "allowed (!)" : Outcome(ls.status()).c_str());
  auto known = bob.Read("/home/alice/talk.pdf");
  std::printf("bob:   cat /home/alice/talk.pdf  -> %s\n",
              known.ok() ? ToString(*known).c_str()
                         : known.status().ToString().c_str());
  auto cv = bob.Read("/home/alice/cv.pdf");
  std::printf("bob:   cat /home/alice/cv.pdf    -> %s\n",
              Outcome(cv.status()).c_str());
  std::printf("(knowing the exact name grants traversal; listing does "
              "not exist for --x readers)\n\n");

  std::printf("--- Group collaboration (/eng is rwxrwx---) ---\n");
  Check(bob.WriteFile("/eng/design.md", ToBytes("# design v2 (bob)")),
        "bob write");
  auto design = alice.Read("/eng/design.md");
  std::printf("bob edits /eng/design.md; alice reads -> \"%s\"\n",
              ToString(*design).c_str());
  auto carol_try = carol.Read("/eng/design.md");
  std::printf("carol (not in eng) reads             -> %s\n\n",
              Outcome(carol_try.status()).c_str());

  std::printf("--- ACL split point: carol gets read on one file ---\n");
  core::CreateOptions aclopts;
  aclopts.mode = M("rw-rw----");
  aclopts.acl.push_back(fs::AclEntry{fs::AclEntry::Kind::kUser, kCarol, 4});
  Check(alice.Create("/eng/spec-for-carol.md", aclopts), "acl create");
  // carol cannot traverse /eng, so alice shares from /home instead.
  core::CreateOptions aclopts2 = aclopts;
  Check(alice.Create("/home/spec-for-carol.md", aclopts2), "acl create 2");
  Check(alice.WriteFile("/home/spec-for-carol.md", ToBytes("please review")),
        "acl write");
  auto carol_acl = carol.Read("/home/spec-for-carol.md");
  std::printf("carol reads /home/spec-for-carol.md  -> \"%s\"\n",
              carol_acl.ok() ? ToString(*carol_acl).c_str()
                             : carol_acl.status().ToString().c_str());
  // Caches are client-local (no coherence protocol, as in the paper):
  // bob must drop his cached copy of /home's table to see the new entry.
  bob.DropCaches();
  auto bob_acl = bob.Read("/home/spec-for-carol.md");
  std::printf("bob (group rw- on it) also reads     -> %s\n\n",
              bob_acl.ok() ? ("\"" + ToString(*bob_acl) + "\"").c_str()
                           : Outcome(bob_acl.status()).c_str());

  std::printf("--- Revocation: alice locks down talk.pdf ---\n");
  auto before = carol.Read("/home/alice/talk.pdf");
  std::printf("carol reads talk.pdf before chmod    -> %s\n",
              before.ok() ? "allowed" : "denied (?)");
  Check(alice.Chmod("/home/alice/talk.pdf", M("rw-r-----")), "chmod");
  carol.DropCaches();
  auto after = carol.Read("/home/alice/talk.pdf");
  std::printf("chmod 640; carol reads again         -> %s\n",
              Outcome(after.status()).c_str());
  std::printf("(immediate revocation re-encrypted the file under a fresh "
              "key, so even a cached DEK is useless)\n\n");

  std::printf("--- Group membership revocation ---\n");
  Check(provisioner.RemoveGroupMember(kEng, kBob), "remove member");
  core::SharoesClient bob2(kBob, bob_kp->priv, &identity, &conn, &engine,
                           copts);
  Check(bob2.Mount(), "remount bob");
  auto bob_after = bob2.Read("/eng/design.md");
  std::printf("bob removed from eng; fresh mount reads /eng/design.md "
              "-> %s\n", Outcome(bob_after.status()).c_str());

  std::printf("\nDone: full *nix sharing semantics, enforced by key "
              "accessibility alone — the SSP never made a single access "
              "decision.\n");
  return 0;
}
