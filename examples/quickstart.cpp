// Quickstart: stand up a simulated SSP, provision an enterprise of two
// users, migrate a small filesystem, and share files through SHAROES —
// all plaintext stays on the client side of the wire.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/client.h"
#include "core/migration.h"
#include "net/network_model.h"
#include "ssp/ssp_server.h"

using namespace sharoes;

namespace {

void Check(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

constexpr fs::UserId kAlice = 1000;
constexpr fs::UserId kBob = 1001;

}  // namespace

int main() {
  std::printf("=== SHAROES quickstart ===\n\n");

  // --- 1. The pieces: a virtual clock, crypto engine, an SSP, a WAN. ---
  SimClock clock;
  crypto::CryptoEngineOptions eng_opts;
  eng_opts.rng_seed = 2024;
  crypto::CryptoEngine engine(&clock, eng_opts);
  ssp::SspServer ssp_server;  // The untrusted storage service provider.
  net::Transport wan(&clock, net::NetworkModel::PaperDsl());
  ssp::SspConnection conn(&ssp_server, &wan);

  // --- 2. Provision the enterprise: users, keys, and the filesystem. ---
  core::IdentityDirectory identity;
  core::Provisioner::Options popts;
  popts.user_key_bits = 1024;  // Keep the demo fast; 2048 in production.
  core::Provisioner provisioner(&identity, &ssp_server, &engine, popts);

  std::printf("Provisioning users alice and bob...\n");
  auto alice_keys = provisioner.CreateUser(kAlice, "alice");
  Check(alice_keys.status(), "create alice");
  auto bob_keys = provisioner.CreateUser(kBob, "bob");
  Check(bob_keys.status(), "create bob");

  // The migration tool transitions existing local storage to the SSP.
  core::LocalNode root = core::LocalNode::Dir(
      "", kAlice, fs::kInvalidGroup, fs::Mode::FromOctal(0755));
  core::LocalNode docs = core::LocalNode::Dir(
      "docs", kAlice, fs::kInvalidGroup, fs::Mode::FromOctal(0755));
  docs.children.push_back(core::LocalNode::File(
      "welcome.txt", kAlice, fs::kInvalidGroup, fs::Mode::FromOctal(0644),
      ToBytes("Welcome to the outsourced enterprise!")));
  root.children.push_back(std::move(docs));
  auto stats = provisioner.Migrate(root);
  Check(stats.status(), "migrate");
  std::printf("Migrated %llu dirs, %llu files; %llu bytes shipped to the "
              "SSP (all ciphertext).\n\n",
              static_cast<unsigned long long>(stats->directories),
              static_cast<unsigned long long>(stats->files),
              static_cast<unsigned long long>(stats->bytes_transferred));

  // --- 3. Mount as alice: one private-key op opens her superblock. ---
  core::ClientOptions copts;
  core::SharoesClient alice(kAlice, alice_keys->priv, &identity, &conn,
                            &engine, copts);
  Check(alice.Mount(), "mount alice");
  std::printf("alice mounted. Reading /docs/welcome.txt ...\n");
  auto content = alice.Read("/docs/welcome.txt");
  Check(content.status(), "read");
  std::printf("  -> \"%s\"\n\n", ToString(*content).c_str());

  // --- 4. Alice writes a new shared file and a private one. ---
  core::CreateOptions shared;
  shared.mode = fs::Mode::FromOctal(0644);  // World-readable.
  Check(alice.Create("/docs/announce.txt", shared), "create");
  Check(alice.WriteFile("/docs/announce.txt",
                        ToBytes("Q3 all-hands on Friday")),
        "write");
  core::CreateOptions secret;
  secret.mode = fs::Mode::FromOctal(0600);  // Owner only.
  Check(alice.Create("/docs/salary.txt", secret), "create secret");
  Check(alice.WriteFile("/docs/salary.txt", ToBytes("CONFIDENTIAL")),
        "write secret");
  std::printf("alice created announce.txt (0644) and salary.txt (0600).\n");

  // --- 5. Bob mounts with only his own key pair: in-band key flow. ---
  core::SharoesClient bob(kBob, bob_keys->priv, &identity, &conn, &engine,
                          copts);
  Check(bob.Mount(), "mount bob");
  auto announce = bob.Read("/docs/announce.txt");
  Check(announce.status(), "bob read announce");
  std::printf("bob reads announce.txt -> \"%s\"\n",
              ToString(*announce).c_str());
  auto salary = bob.Read("/docs/salary.txt");
  std::printf("bob reads salary.txt   -> %s\n\n",
              salary.ok() ? "UNEXPECTEDLY ALLOWED"
                          : salary.status().ToString().c_str());

  // --- 6. What did all this cost on the simulated DSL WAN? ---
  CostSnapshot snap = clock.snapshot();
  std::printf("Virtual time elapsed: %.1f s  (network %.1f s, crypto "
              "%.1f s, other %.1f s)\n",
              snap.total_s(), snap.network_ns() / 1e9,
              snap.crypto_ns() / 1e9, snap.other_ns() / 1e9);
  std::printf("Round trips to the SSP: %llu\n",
              static_cast<unsigned long long>(wan.counters().round_trips));
  std::printf("\nDone. The SSP stored and served everything without ever "
              "holding a key or a plaintext byte.\n");
  return 0;
}
